/**
 * @file
 * Tests for the setpm ISA extension (Fig. 14): encoding, decoding,
 * round-trips, malformed-word rejection, and program building.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/prng.h"
#include "isa/instruction.h"
#include "isa/program.h"

namespace regate {
namespace isa {
namespace {

using core::PowerMode;

TEST(Setpm, PaperExampleEncoding)
{
    // setpm 0b1011,vu,off -> power-gate VU 0, 1, and 3 (§4.2).
    SetpmInstr instr;
    instr.fuType = FuType::Vu;
    instr.mode = PowerMode::Off;
    instr.bitmap = 0b1011;
    instr.immediate = true;

    auto word = encodeSetpm(instr);
    auto back = decodeSetpm(word);
    EXPECT_EQ(back, instr);
    EXPECT_EQ(back.toString(), "setpm 0b00001011,vu,off");
}

TEST(Setpm, RoundTripAllVariants)
{
    Prng rng(5);
    for (int i = 0; i < 200; ++i) {
        SetpmInstr instr;
        instr.fuType = static_cast<FuType>(rng.uniform(0, 3));
        if (instr.fuType == FuType::Sram) {
            instr.mode = static_cast<PowerMode>(rng.uniform(0, 3));
            instr.startAddrReg =
                static_cast<std::uint8_t>(rng.uniform(0, 255));
            instr.endAddrReg =
                static_cast<std::uint8_t>(rng.uniform(0, 255));
        } else {
            instr.mode = static_cast<PowerMode>(rng.uniform(0, 2));
            instr.immediate = rng.uniform(0, 1) == 1;
            if (instr.immediate)
                instr.bitmap =
                    static_cast<std::uint8_t>(rng.uniform(1, 255));
            else
                instr.bitmapReg =
                    static_cast<std::uint8_t>(rng.uniform(0, 255));
        }
        auto back = decodeSetpm(encodeSetpm(instr));
        EXPECT_EQ(back, instr) << i;
    }
}

TEST(Setpm, SramVariantCarriesAddressRegs)
{
    SetpmInstr instr;
    instr.fuType = FuType::Sram;
    instr.mode = PowerMode::Sleep;
    instr.startAddrReg = 3;
    instr.endAddrReg = 7;
    auto back = decodeSetpm(encodeSetpm(instr));
    EXPECT_EQ(back.startAddrReg, 3);
    EXPECT_EQ(back.endAddrReg, 7);
    EXPECT_EQ(back.mode, PowerMode::Sleep);
    EXPECT_EQ(back.toString(), "setpm %r3,%r7,sram,sleep");
}

TEST(Setpm, SleepOnlyForSram)
{
    SetpmInstr instr;
    instr.fuType = FuType::Vu;
    instr.mode = PowerMode::Sleep;
    instr.bitmap = 1;
    EXPECT_THROW(encodeSetpm(instr), ConfigError);
}

TEST(Setpm, EmptyBitmapRejected)
{
    SetpmInstr instr;
    instr.fuType = FuType::Sa;
    instr.mode = PowerMode::Off;
    instr.bitmap = 0;
    EXPECT_THROW(encodeSetpm(instr), ConfigError);
}

TEST(Setpm, MalformedWordsRejected)
{
    // Reserved bits set.
    EXPECT_THROW(decodeSetpm(0xC0000000u), ConfigError);
    // Unknown functional-unit type (0x7).
    EXPECT_THROW(decodeSetpm(0x7u | (1u << 5) | (1u << 6)),
                 ConfigError);
}

TEST(Program, BuilderAndCounting)
{
    Program p;
    p.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    p.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu, PowerMode::Off);
    p.bundle().saPop(0).saPop(1).nop(6);
    p.bundle().setpm(0b11, FuType::Vu, PowerMode::On);

    EXPECT_EQ(p.size(), 4u);
    EXPECT_EQ(p.setpmCount(), 2u);
    EXPECT_EQ(p.bundles()[0].ops.size(), 4u);
    EXPECT_EQ(p.bundles()[2].nopCycles, 6u);
    EXPECT_TRUE(p.bundles()[1].misc.has_value());
    EXPECT_EQ(p.bundles()[1].misc->bitmap, 0b11);
}

TEST(Program, OneMiscSlotPerBundle)
{
    Program p;
    auto b = p.bundle();
    b.setpm(0b1, FuType::Vu, PowerMode::Off);
    EXPECT_THROW(b.setpm(0b10, FuType::Vu, PowerMode::On), ConfigError);
}

TEST(Program, SramSetpmInBundle)
{
    Program p;
    p.bundle().setpmSram(1, 2, PowerMode::Off);
    EXPECT_EQ(p.bundles()[0].misc->fuType, FuType::Sram);
}

TEST(FuType, Names)
{
    EXPECT_EQ(fuTypeName(FuType::Sa), "sa");
    EXPECT_EQ(fuTypeName(FuType::Sram), "sram");
}

}  // namespace
}  // namespace isa
}  // namespace regate
