/**
 * @file
 * Tests for interval normalization, complement, and trace extraction.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/interval.h"

namespace regate {
namespace core {
namespace {

TEST(Interval, Basics)
{
    Interval iv{2, 5};
    EXPECT_EQ(iv.length(), 3u);
    EXPECT_FALSE(iv.empty());
    EXPECT_TRUE((Interval{3, 3}).empty());
}

TEST(Interval, NormalizeSortsAndMerges)
{
    auto out = normalize({{5, 8}, {0, 2}, {2, 4}, {7, 10}});
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0], (Interval{0, 4}));
    EXPECT_EQ(out[1], (Interval{5, 10}));
}

TEST(Interval, NormalizeDropsEmpties)
{
    auto out = normalize({{3, 3}, {1, 2}});
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0], (Interval{1, 2}));
}

TEST(Interval, NormalizeRejectsBackwards)
{
    EXPECT_THROW(normalize({{5, 2}}), ConfigError);
}

TEST(Interval, CoveredLength)
{
    EXPECT_EQ(coveredLength(normalize({{0, 3}, {10, 14}})), 7u);
    EXPECT_EQ(coveredLength({}), 0u);
}

TEST(Interval, Complement)
{
    auto idle = complementWithin(normalize({{2, 4}, {6, 8}}), 10);
    ASSERT_EQ(idle.size(), 3u);
    EXPECT_EQ(idle[0], (Interval{0, 2}));
    EXPECT_EQ(idle[1], (Interval{4, 6}));
    EXPECT_EQ(idle[2], (Interval{8, 10}));
}

TEST(Interval, ComplementFullCoverage)
{
    EXPECT_TRUE(complementWithin({{0, 10}}, 10).empty());
}

TEST(Interval, ComplementEmptyInput)
{
    auto idle = complementWithin({}, 5);
    ASSERT_EQ(idle.size(), 1u);
    EXPECT_EQ(idle[0], (Interval{0, 5}));
}

TEST(Interval, ComplementRejectsOverrun)
{
    EXPECT_THROW(complementWithin({{0, 11}}, 10), ConfigError);
}

TEST(Interval, FromTrace)
{
    auto ivs = intervalsFromTrace(
        {false, true, true, false, true, false});
    ASSERT_EQ(ivs.size(), 2u);
    EXPECT_EQ(ivs[0], (Interval{1, 3}));
    EXPECT_EQ(ivs[1], (Interval{4, 5}));
}

TEST(Interval, FromTraceOpenEnd)
{
    auto ivs = intervalsFromTrace({true, true});
    ASSERT_EQ(ivs.size(), 1u);
    EXPECT_EQ(ivs[0], (Interval{0, 2}));
}

TEST(Interval, FromTraceAllIdle)
{
    EXPECT_TRUE(intervalsFromTrace({false, false}).empty());
}

}  // namespace
}  // namespace core
}  // namespace regate
