/**
 * @file
 * Tests for the per-operator tile-level simulator: bottleneck
 * selection, component activity, and work counters.
 */

#include <gtest/gtest.h>

#include "sim/operator_sim.h"

namespace regate {
namespace sim {
namespace {

using arch::Component;
using arch::NpuGeneration;
using graph::Operator;
using graph::OpKind;

class OpSimFixture : public ::testing::Test
{
  protected:
    OpSimFixture()
        : cfg_(arch::npuConfig(NpuGeneration::D)),
          torus_(ici::Torus::forChips(cfg_, 8)),
          coll_(cfg_, torus_),
          sim_(cfg_, coll_)
    {}

    const arch::NpuConfig &cfg_;
    ici::Torus torus_;
    ici::CollectiveModel coll_;
    OperatorSimulator sim_;
};

TEST_F(OpSimFixture, LargeGemmIsSaBound)
{
    Operator op;
    op.kind = OpKind::MatMul;
    op.name = "gemm";
    op.m = 65536;
    op.k = 8192;
    op.n = 1280;
    op.hbmReadBytes = 2e7;
    auto ex = sim_.simulate(op);

    EXPECT_EQ(ex.bottleneck, Component::Sa);
    EXPECT_GT(ex.active[Component::Sa], 0u);
    EXPECT_EQ(ex.duration, ex.active[Component::Sa]);
    EXPECT_DOUBLE_EQ(ex.work.macs,
                     65536.0 * 8192 * 1280);
    // SA spatial utilization near peak for large M (Fig. 5).
    EXPECT_GT(ex.saStats.spatialUtilization(), 0.9);
    // SA active nearly the whole op; VU only drains outputs.
    EXPECT_GT(ex.activeFraction(Component::Sa), 0.99);
    EXPECT_LT(ex.activeFraction(Component::Vu), 0.2);
}

TEST_F(OpSimFixture, VuMappedGemmSkipsSa)
{
    Operator op;
    op.kind = OpKind::MatMul;
    op.name = "decode-gemm";
    op.m = 8;
    op.k = 4096;
    op.n = 4096;
    op.mapToVu = true;
    auto ex = sim_.simulate(op);
    EXPECT_EQ(ex.active[Component::Sa], 0u);
    EXPECT_DOUBLE_EQ(ex.work.macs, 0.0);
    EXPECT_GT(ex.work.vuOps, 8.0 * 4096 * 4096 - 1);
    EXPECT_EQ(ex.saStats.macs, 0u);
}

TEST_F(OpSimFixture, MemoryBoundOpIsHbmBound)
{
    Operator op;
    op.kind = OpKind::Normalization;
    op.name = "norm";
    op.vuOps = 1e6;
    op.hbmReadBytes = 1e9;
    op.hbmWriteBytes = 1e9;
    auto ex = sim_.simulate(op);
    EXPECT_EQ(ex.bottleneck, Component::Hbm);
    EXPECT_GT(ex.activeFraction(Component::Hbm), 0.99);
}

TEST_F(OpSimFixture, CollectiveIsIciBound)
{
    Operator op;
    op.kind = OpKind::Collective;
    op.name = "ar";
    op.coll = graph::CollKind::AllReduce;
    op.collBytes = 256e6;
    auto ex = sim_.simulate(op);
    EXPECT_EQ(ex.bottleneck, Component::Ici);
    EXPECT_GT(ex.work.iciBytes, 0.0);
    EXPECT_EQ(ex.active[Component::Sa], 0u);
}

TEST_F(OpSimFixture, EmbeddingGatherSlowerThanStream)
{
    Operator gather;
    gather.kind = OpKind::Embedding;
    gather.name = "emb";
    gather.lookups = 1e6;
    gather.bytesPerLookup = 512;
    gather.hbmReadBytes = 512e6;
    auto g = sim_.simulate(gather);

    Operator stream;
    stream.kind = OpKind::Transfer;
    stream.name = "copy";
    stream.hbmReadBytes = 512e6;
    auto s = sim_.simulate(stream);

    EXPECT_GT(g.active[Component::Hbm], s.active[Component::Hbm]);
}

TEST_F(OpSimFixture, MinimumOpLatency)
{
    Operator op;
    op.kind = OpKind::Elementwise;
    op.name = "tiny";
    op.vuOps = 1;
    auto ex = sim_.simulate(op);
    EXPECT_GE(ex.duration, 64u);
}

TEST_F(OpSimFixture, TimelinesSpanOpDuration)
{
    Operator op;
    op.kind = OpKind::MatMul;
    op.name = "gemm";
    op.m = 4096;
    op.k = 1024;
    op.n = 1024;
    auto ex = sim_.simulate(op);
    for (auto c : {Component::Sa, Component::Vu, Component::Hbm,
                   Component::Ici}) {
        EXPECT_EQ(ex.timeline[c].span(), ex.duration)
            << arch::componentName(c);
        ex.timeline[c].checkInvariants();
    }
    // ICI idle for non-collectives.
    EXPECT_EQ(ex.timeline[Component::Ici].activeCycles(), 0u);
}

TEST_F(OpSimFixture, SramUsageCappedAtCapacity)
{
    Operator op;
    op.kind = OpKind::MatMul;
    op.name = "huge";
    op.m = 65536;
    op.k = 16384;
    op.n = 53248;
    op.sramDemandBytes = 1e12;
    auto ex = sim_.simulate(op);
    EXPECT_DOUBLE_EQ(ex.sramUsedBytes,
                     static_cast<double>(cfg_.sramBytes));
}

TEST_F(OpSimFixture, SmallHeadDimLowersSpatialUtil)
{
    Operator op;
    op.kind = OpKind::MatMul;
    op.name = "dit-scores";
    op.batch = 2048;
    op.m = 1024;
    op.k = 72;
    op.n = 1024;
    auto ex = sim_.simulate(op);
    EXPECT_LT(ex.saStats.spatialUtilization(), 0.6);
}

}  // namespace
}  // namespace sim
}  // namespace regate
