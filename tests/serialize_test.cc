/**
 * @file
 * Tests for the sharded-sweep layer (sim/sweep.h shard planner +
 * sim/serialize.h JSON round trip and merge): shard plans must be
 * deterministic and covering, serialization must be bit-exact, and
 * merging any shard partition — N = 1, 2, 7, more shards than cases,
 * including the SLO-search path — must reproduce exactly what
 * SweepRunner::runSerial computes.
 */

#include <gtest/gtest.h>

#include "sim/serialize.h"
#include "sim/sweep.h"

namespace regate {
namespace sim {
namespace {

std::vector<SweepCase>
smallGrid()
{
    auto grid = makeGrid({models::Workload::Prefill8B,
                          models::Workload::Decode8B,
                          models::Workload::DlrmS,
                          models::Workload::DiTXL},
                         {arch::NpuGeneration::B,
                          arch::NpuGeneration::D});
    // Give one case non-default gating params so the params leg of
    // the round trip is exercised by every merge test.
    arch::LeakageRatios r;
    r.logicOff = 0.2;
    r.sramSleep = 0.4;
    r.sramOff = 0.1;
    grid[3].params = arch::GatingParams(r);
    grid[5].params.setDelayScale(2.5);
    return grid;
}

TEST(ShardPlanner, CoversGridExactlyOnceInOrder)
{
    for (std::size_t total : {0u, 1u, 5u, 8u, 25u, 68u}) {
        for (int count : {1, 2, 3, 7, 16}) {
            std::size_t covered = 0;
            std::size_t expected_begin = 0;
            for (int i = 0; i < count; ++i) {
                auto r = shardRange(total, i, count);
                // Contiguous and ordered: each shard picks up where
                // the previous one ended.
                EXPECT_EQ(r.begin, expected_begin);
                EXPECT_LE(r.begin, r.end);
                expected_begin = r.end;
                covered += r.size();
                // Balanced: sizes differ by at most one.
                EXPECT_LE(r.size(), total / count + 1);
            }
            EXPECT_EQ(expected_begin, total);
            EXPECT_EQ(covered, total);
        }
    }
}

TEST(ShardPlanner, MoreShardsThanCasesYieldsEmptyShards)
{
    std::size_t total = 3;
    int count = 7;
    std::size_t non_empty = 0;
    for (int i = 0; i < count; ++i)
        non_empty += shardRange(total, i, count).empty() ? 0 : 1;
    EXPECT_EQ(non_empty, total);
}

TEST(ShardPlanner, RejectsBadIndexAndCount)
{
    EXPECT_THROW(shardRange(10, 0, 0), ConfigError);
    EXPECT_THROW(shardRange(10, -1, 4), ConfigError);
    EXPECT_THROW(shardRange(10, 4, 4), ConfigError);
}

TEST(ShardPlanner, ShardGridSlicesCases)
{
    auto grid = smallGrid();
    std::size_t total = 0;
    for (int i = 0; i < 3; ++i) {
        auto slice = shardGrid(grid, i, 3);
        auto range = shardRange(grid.size(), i, 3);
        ASSERT_EQ(slice.size(), range.size());
        for (std::size_t k = 0; k < slice.size(); ++k) {
            EXPECT_EQ(slice[k].workload,
                      grid[range.begin + k].workload);
            EXPECT_EQ(slice[k].gen, grid[range.begin + k].gen);
            EXPECT_TRUE(slice[k].params ==
                        grid[range.begin + k].params);
        }
        total += slice.size();
    }
    EXPECT_EQ(total, grid.size());
}

/**
 * Canonical-bytes equality is the strongest practical check: the
 * writer serializes every round-tripped field, so equal JSON means
 * equal values for everything a figure can read.
 */
void
expectReportsIdentical(const WorkloadReport &a, const WorkloadReport &b)
{
    EXPECT_EQ(toJson(a), toJson(b));
}

TEST(JsonRoundTrip, ReportBitExact)
{
    arch::LeakageRatios r;
    r.logicOff = 0.37;
    r.sramSleep = 0.41;
    r.sramOff = 0.019;
    arch::GatingParams params(r);
    params.setDelayScale(1.5);
    auto rep = simulateWorkload(models::Workload::Prefill8B,
                                arch::NpuGeneration::D, params);

    auto text = toJson(rep);
    auto back = reportFromJson(text);

    // The canonical writer is deterministic, so a bit-exact round
    // trip reserializes to the same bytes.
    EXPECT_EQ(toJson(back), text);

    // Spot-check the fields the bytes are standing in for,
    // including derived quantities that need the private gating
    // params (idlePowerW) and the full policy table.
    EXPECT_EQ(back.workload, rep.workload);
    EXPECT_EQ(back.gen, rep.gen);
    EXPECT_EQ(back.setup.chips, rep.setup.chips);
    EXPECT_EQ(back.units, rep.units);
    EXPECT_EQ(back.run().cycles, rep.run().cycles);
    EXPECT_EQ(back.run().opRecords.size(), rep.run().opRecords.size());
    for (auto c : arch::kAllComponents)
        EXPECT_TRUE(back.run().timeline[c] == rep.run().timeline[c]);
    for (auto p : allPolicies()) {
        EXPECT_EQ(back.run().result(p).seconds, rep.run().result(p).seconds);
        EXPECT_EQ(back.run().savingVsNoPg(p), rep.run().savingVsNoPg(p));
        EXPECT_EQ(back.idlePowerW(p), rep.idlePowerW(p));
        EXPECT_EQ(back.energyPerUnit(p), rep.energyPerUnit(p));
    }
}

TEST(JsonRoundTrip, EmptyOpRecordsReportBitExact)
{
    // Edge of the SoA op-record arena: a run with no records (and so
    // an empty interned-name table) must serialize, parse, and
    // reserialize to the same bytes.
    auto rep = simulateWorkload(models::Workload::DlrmS,
                                arch::NpuGeneration::B);
    WorkloadRun bare;
    bare.name = rep.run().name;
    bare.cycles = rep.run().cycles;
    bare.seconds = rep.run().seconds;
    bare.timeline = rep.run().timeline;
    bare.sramUsedIntegral = rep.run().sramUsedIntegral;
    bare.policies = rep.run().policies;
    bare.opRecords.seal();
    ASSERT_TRUE(bare.opRecords.empty());

    WorkloadReport stripped = rep;  // Aliases the cached run...
    ReportSerializeAccess::setRun(   // ...then swaps in the bare one.
        stripped,
        std::make_shared<const WorkloadRun>(std::move(bare)));

    auto text = toJson(stripped);
    auto back = reportFromJson(text);
    EXPECT_EQ(toJson(back), text);
    EXPECT_TRUE(back.run().opRecords.empty());
    EXPECT_EQ(back.run().opRecords.nameCount(), 0u);
    EXPECT_EQ(back.run().cycles, rep.run().cycles);
}

TEST(JsonRoundTrip, OpRecordArenaFieldsSurvive)
{
    // Every column of the SoA arena, record by record, through the
    // writer and back.
    auto rep = simulateWorkload(models::Workload::Decode8B,
                                arch::NpuGeneration::D);
    auto back = reportFromJson(toJson(rep));
    const auto &a = rep.run().opRecords;
    const auto &b = back.run().opRecords;
    ASSERT_EQ(a.size(), b.size());
    ASSERT_GT(a.size(), 0u);
    EXPECT_EQ(a.nameCount(), b.nameCount());
    EXPECT_LE(b.nameCount(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name(), b[i].name());
        EXPECT_EQ(a[i].kind(), b[i].kind());
        EXPECT_EQ(a[i].count(), b[i].count());
        EXPECT_EQ(a[i].duration(), b[i].duration());
        EXPECT_EQ(a[i].sramDemandBytes(), b[i].sramDemandBytes());
        EXPECT_EQ(a[i].dynamicJ(), b[i].dynamicJ());
        EXPECT_EQ(a[i].sramUsedFrac(), b[i].sramUsedFrac());
        for (auto c : arch::kAllComponents)
            EXPECT_EQ(a[i].activeFrac(c), b[i].activeFrac(c));
    }
}

TEST(JsonRoundTrip, SloResultBitExact)
{
    auto res = findBestSetup(models::Workload::DlrmS,
                             arch::NpuGeneration::D);
    auto text = toJson(res);
    auto back = sloResultFromJson(text);
    EXPECT_EQ(toJson(back), text);
    EXPECT_EQ(back.setup.chips, res.setup.chips);
    EXPECT_EQ(back.setup.batch, res.setup.batch);
    EXPECT_EQ(back.secondsPerUnit, res.secondsPerUnit);
    EXPECT_EQ(back.energyPerUnit, res.energyPerUnit);
    EXPECT_EQ(back.sloRatio, res.sloRatio);
    expectReportsIdentical(back.report, res.report);
}

TEST(JsonRoundTrip, RejectsMalformedInput)
{
    EXPECT_THROW(reportFromJson(""), ConfigError);
    EXPECT_THROW(reportFromJson("{\"workload\":0}"), ConfigError);
    EXPECT_THROW(reportFromJson("not json"), ConfigError);
    EXPECT_THROW(parseShard("{\"regate_shard\":99}"), ConfigError);
}

TEST(ShardDigests, VersionErrorNamesBothVersions)
{
    try {
        parseShard("{\"regate_shard\":1,\"kind\":\"run\","
                   "\"cases\":0,\"shard\":{\"index\":0,"
                   "\"count\":1},\"entries\":[\n]}\n");
        FAIL() << "version 1 document was accepted";
    } catch (const ConfigError &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find("version 1"), std::string::npos) << msg;
        EXPECT_NE(msg.find("version 2"), std::string::npos) << msg;
    }
}

TEST(ShardDigests, TamperedPayloadIsRejected)
{
    auto grid = smallGrid();
    auto results = SweepRunner::runSerial(grid);
    auto text = writeRunShard(results, 0, grid.size(), 0, 1);
    ASSERT_NO_THROW(parseShard(text));

    // Flip one digit of a serialized counter. The value still
    // parses — only the entry digest can catch it.
    auto at = text.find("\"cycles\":") + 9;
    text[at] = text[at] == '9' ? '1' : char(text[at] + 1);
    try {
        parseShard(text);
        FAIL() << "tampered payload was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("digest mismatch"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ShardDigests, TamperedFileDigestIsRejected)
{
    auto grid = smallGrid();
    auto results = SweepRunner::runSerial(grid);
    auto text = writeRunShard(results, 0, grid.size(), 0, 1);

    auto at = text.find("\"file_digest\":\"") + 15;
    text[at] = text[at] == 'f' ? '0' : char(text[at] + 1);
    try {
        parseShard(text);
        FAIL() << "tampered file digest was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("whole-file digest"),
                  std::string::npos)
            << e.what();
    }
}

TEST(ShardDigests, EntryDigestIsContentDigestOfResultJson)
{
    auto grid = makeGrid({models::Workload::DlrmS},
                         {arch::NpuGeneration::D});
    auto results = SweepRunner::runSerial(grid);
    auto text = writeRunShard(results, 0, grid.size(), 0, 1);

    auto json = toJson(results[0]);
    auto expect =
        "{\"index\":0,\"digest\":\"" + contentDigest(json) +
        "\",\"result\":" + json + "}";
    EXPECT_NE(text.find(expect), std::string::npos)
        << "entry line is not the documented canonical form";
}

/** Shard a grid N ways, serialize, parse, merge; expect == serial. */
void
expectShardedRunMatchesSerial(const std::vector<SweepCase> &grid,
                              int count)
{
    auto reference = SweepRunner::runSerial(grid);

    std::vector<ShardDoc> docs;
    for (int i = 0; i < count; ++i) {
        auto range = shardRange(grid.size(), i, count);
        auto results =
            SweepRunner::runSerial(shardGrid(grid, i, count));
        auto text = writeRunShard(results, range.begin, grid.size(),
                                  i, count);
        docs.push_back(parseShard(text));
        EXPECT_EQ(docs.back().runs.size(), range.size());
    }
    auto merged = mergeRunShards(docs);
    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < merged.size(); ++i)
        expectReportsIdentical(merged[i], reference[i]);
}

TEST(ShardMerge, OneShardMatchesSerial)
{
    expectShardedRunMatchesSerial(smallGrid(), 1);
}

TEST(ShardMerge, TwoShardsMatchSerial)
{
    expectShardedRunMatchesSerial(smallGrid(), 2);
}

TEST(ShardMerge, SevenShardsMatchSerial)
{
    expectShardedRunMatchesSerial(smallGrid(), 7);
}

TEST(ShardMerge, MoreShardsThanCasesMatchesSerial)
{
    // 8 cases split 11 ways: several shards are empty, and their
    // (header-only) documents must still merge cleanly.
    expectShardedRunMatchesSerial(smallGrid(), 11);
}

TEST(ShardMerge, MergedDocumentEqualsSingleShardDocument)
{
    auto grid = smallGrid();
    auto reference = SweepRunner::runSerial(grid);
    auto single = writeRunShard(reference, 0, grid.size(), 0, 1);

    std::vector<ShardDoc> docs;
    for (int i = 0; i < 3; ++i) {
        auto range = shardRange(grid.size(), i, 3);
        docs.push_back(parseShard(writeRunShard(
            SweepRunner::runSerial(shardGrid(grid, i, 3)),
            range.begin, grid.size(), i, 3)));
    }
    // Reserializing the merged result vector as the degenerate 0/1
    // shard reproduces the single-shard document byte for byte —
    // the same guarantee tools/merge_shards.py provides on files.
    auto merged = mergeRunShards(docs);
    EXPECT_EQ(writeRunShard(merged, 0, grid.size(), 0, 1), single);
}

TEST(ShardMerge, SearchPathMatchesSerial)
{
    auto grid = makeGrid({models::Workload::DlrmS},
                         {arch::NpuGeneration::C,
                          arch::NpuGeneration::D});
    std::vector<SloResult> reference;
    for (const auto &c : grid)
        reference.push_back(findBestSetupSerial(c.workload, c.gen,
                                                c.params));

    std::vector<ShardDoc> docs;
    for (int i = 0; i < 2; ++i) {
        auto range = shardRange(grid.size(), i, 2);
        std::vector<SloResult> results;
        for (const auto &c : shardGrid(grid, i, 2))
            results.push_back(findBestSetupSerial(c.workload, c.gen,
                                                  c.params));
        docs.push_back(parseShard(writeSearchShard(
            results, range.begin, grid.size(), i, 2)));
    }
    auto merged = mergeSearchShards(docs);
    ASSERT_EQ(merged.size(), reference.size());
    for (std::size_t i = 0; i < merged.size(); ++i) {
        EXPECT_EQ(toJson(merged[i]), toJson(reference[i]));
        EXPECT_EQ(merged[i].setup.chips, reference[i].setup.chips);
        EXPECT_EQ(merged[i].energyPerUnit,
                  reference[i].energyPerUnit);
    }
}

TEST(ShardMerge, RejectsGapsDuplicatesAndMismatches)
{
    auto grid = smallGrid();
    std::vector<ShardDoc> docs;
    for (int i = 0; i < 2; ++i) {
        auto range = shardRange(grid.size(), i, 2);
        docs.push_back(parseShard(writeRunShard(
            SweepRunner::runSerial(shardGrid(grid, i, 2)),
            range.begin, grid.size(), i, 2)));
    }

    // Coverage gap: one shard missing.
    EXPECT_THROW(mergeRunShards({docs[0]}), ConfigError);
    // Duplicate entries: the same shard twice.
    EXPECT_THROW(mergeRunShards({docs[0], docs[0]}), ConfigError);
    // Kind mismatch: run entries through the search merge.
    EXPECT_THROW(mergeSearchShards(docs), ConfigError);
    // Case-count mismatch between documents.
    auto other = docs[1];
    other.cases = grid.size() + 1;
    EXPECT_THROW(mergeRunShards({docs[0], other}), ConfigError);
    // Nothing at all.
    EXPECT_THROW(mergeRunShards({}), ConfigError);
}

}  // namespace
}  // namespace sim
}  // namespace regate
