/**
 * @file
 * Tests for the torus topology and collective cost models.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "common/units.h"
#include "ici/collective.h"
#include "ici/topology.h"

namespace regate {
namespace ici {
namespace {

using arch::NpuGeneration;
using units::MiB;

TEST(Torus, ExplicitDims)
{
    Torus t({4, 4});
    EXPECT_EQ(t.numChips(), 16);
    EXPECT_EQ(t.rank(), 2);
    EXPECT_EQ(t.diameterHops(), 4);
    EXPECT_EQ(t.toString(), "4x4");
}

TEST(Torus, FactorizationPreservesChipCount)
{
    for (auto gen : {NpuGeneration::A, NpuGeneration::D}) {
        const auto &cfg = arch::npuConfig(gen);
        for (int chips : {1, 2, 4, 8, 16, 64, 128, 4096}) {
            Torus t = Torus::forChips(cfg, chips);
            EXPECT_EQ(t.numChips(), chips) << t.toString();
            EXPECT_EQ(t.rank(), cfg.torusDims);
        }
    }
}

TEST(Torus, NearRegularShape)
{
    Torus t = Torus::forChips(arch::npuConfig(NpuGeneration::D), 64);
    // 3D torus: 4x4x4.
    EXPECT_EQ(t.dims()[0] * t.dims()[1] * t.dims()[2], 64);
    EXPECT_LE(t.dims().back() / std::max(1, t.dims().front()), 4);
}

TEST(Torus, Validation)
{
    EXPECT_THROW(Torus({}), ConfigError);
    EXPECT_THROW(Torus({0, 4}), ConfigError);
    EXPECT_THROW(
        Torus::forChips(arch::npuConfig(NpuGeneration::D), 0),
        ConfigError);
}

TEST(Collective, SingleChipIsFree)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    CollectiveModel m(cfg, Torus({1}));
    EXPECT_DOUBLE_EQ(m.seconds(CollectiveKind::AllReduce, MiB(64)), 0.0);
    EXPECT_DOUBLE_EQ(m.wireBytes(CollectiveKind::AllReduce, MiB(64)),
                     0.0);
}

TEST(Collective, AllReduceCostsTwiceReduceScatter)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    CollectiveModel m(cfg, Torus({4, 2}));
    double ar = m.wireBytes(CollectiveKind::AllReduce, MiB(64));
    double rs = m.wireBytes(CollectiveKind::ReduceScatter, MiB(64));
    double ag = m.wireBytes(CollectiveKind::AllGather, MiB(64));
    EXPECT_NEAR(ar, rs + ag, 1.0);
    EXPECT_DOUBLE_EQ(rs, ag);
}

TEST(Collective, LatencyFloorIsMicroseconds)
{
    // §1: an operator is "typically at least a few us".
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    CollectiveModel m(cfg, Torus({2, 2, 2}));
    EXPECT_GE(m.seconds(CollectiveKind::AllReduce, 64), 2e-6);
}

TEST(Collective, TimeMonotonicInBytes)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    CollectiveModel m(cfg, Torus({4, 4, 4}));
    for (auto kind :
         {CollectiveKind::AllReduce, CollectiveKind::AllGather,
          CollectiveKind::AllToAll, CollectiveKind::P2PSendRecv}) {
        EXPECT_LT(m.seconds(kind, MiB(1)), m.seconds(kind, MiB(64)))
            << collectiveKindName(kind);
    }
}

TEST(Collective, AllToAllPaysTorusPenalty)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    CollectiveModel m(cfg, Torus({4, 4, 4}));
    EXPECT_GT(m.seconds(CollectiveKind::AllToAll, MiB(64)),
              m.seconds(CollectiveKind::AllGather, MiB(64)));
}

TEST(Collective, BiggerPodsCostMorePerChip)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    CollectiveModel small(cfg, Torus({2, 2, 2}));
    CollectiveModel big(cfg, Torus({8, 8, 8}));
    EXPECT_LT(small.seconds(CollectiveKind::AllReduce, MiB(64)),
              big.seconds(CollectiveKind::AllReduce, MiB(64)));
}

TEST(Collective, FasterLinksFasterCollectives)
{
    Torus t({2, 2});
    CollectiveModel a(arch::npuConfig(NpuGeneration::A), t);
    CollectiveModel b(arch::npuConfig(NpuGeneration::B), t);
    EXPECT_GT(a.seconds(CollectiveKind::AllReduce, MiB(256)),
              b.seconds(CollectiveKind::AllReduce, MiB(256)));
}

TEST(Collective, KindNames)
{
    EXPECT_EQ(collectiveKindName(CollectiveKind::AllToAll), "AllToAll");
    EXPECT_EQ(collectiveKindName(CollectiveKind::P2PSendRecv),
              "P2PSendRecv");
}

}  // namespace
}  // namespace ici
}  // namespace regate
