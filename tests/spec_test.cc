/**
 * @file
 * Tests for the text workload-spec parser (models/spec.h): the
 * strict error matrix (every violation a named ConfigError carrying
 * the offending source:line), grid expansion, and the canonical
 * round-trip that anchors the fleet's spec digest.
 */

#include <gtest/gtest.h>

#include <string>

#include "common/error.h"
#include "models/spec.h"

namespace regate {
namespace models {
namespace {

/** Parse @p text expecting a ConfigError mentioning @p needle and
 *  the offending @p line number. */
void
expectError(const std::string &text, const std::string &needle,
            int line)
{
    try {
        parseSpecText(text, "spec.txt");
        FAIL() << "expected a ConfigError containing '" << needle
               << "'";
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find(needle), std::string::npos)
            << "error '" << what << "' lacks '" << needle << "'";
        std::string at = "spec.txt:" + std::to_string(line) + ":";
        EXPECT_NE(what.find(at), std::string::npos)
            << "error '" << what << "' does not name " << at;
    }
}

const char *kValid = R"(@regate-spec v1
[scenario small]
family = llama-prefill
model = 8b
batch = 4
chips = 1
)";

TEST(SpecParser, MinimalScenarioParses)
{
    auto file = parseSpecText(kValid);
    ASSERT_EQ(file.scenarios.size(), 1u);
    const auto &s = *file.scenarios[0];
    EXPECT_EQ(s.name, "small");
    EXPECT_EQ(s.family, "llama-prefill");
    EXPECT_EQ(s.model, "8b");
    EXPECT_EQ(s.batch, 4);
    EXPECT_EQ(s.chips, 1);
    // Defaults are filled by validation.
    EXPECT_GT(s.seqLen, 0);
    EXPECT_EQ(s.unit, "token");
}

TEST(SpecParser, MissingHeader)
{
    expectError("[scenario a]\nfamily = dlrm\n",
                "expected '@regate-spec v1' header", 1);
}

TEST(SpecParser, UnknownFamily)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = quantum\n"
                "batch = 1\nchips = 1\n",
                "unknown workload family 'quantum'", 3);
}

TEST(SpecParser, UnknownKey)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
                "model = s\nbatch = 1\nchips = 1\nwarp = 9\n",
                "unknown key 'warp'", 7);
}

TEST(SpecParser, MoeOnlyKeyRejectedForLlama)
{
    // `experts` is documented by moe, not llama-train.
    expectError("@regate-spec v1\n[scenario a]\n"
                "family = llama-train\nmodel = 8b\nbatch = 1\n"
                "chips = 1\nexperts = 8\n",
                "unknown key 'experts'", 7);
}

TEST(SpecParser, MalformedValue)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
                "model = s\nbatch = soon\nchips = 1\n",
                "malformed value for 'batch'", 5);
}

TEST(SpecParser, BadDistributionNoStep)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
                "model = s\nbatch = 1..8\nchips = 1\n",
                "bad distribution for 'batch'", 5);
}

TEST(SpecParser, BadDistributionInvertedBounds)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
                "model = s\nbatch = 8..1:*2\nchips = 1\n",
                "upper bound 1 below lower bound 8", 5);
}

TEST(SpecParser, BadDistributionGeometricStep)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
                "model = s\nbatch = 1..8:*1\nchips = 1\n",
                "geometric step must be > 1", 5);
}

TEST(SpecParser, InconsistentParallelism)
{
    expectError("@regate-spec v1\n[scenario a]\n"
                "family = llama-decode\nmodel = 8b\nbatch = 8\n"
                "chips = 8\ndp = 2\ntp = 2\npp = 1\n",
                "chips (8) != tp*dp*pp", 6);
}

TEST(SpecParser, EmptySection)
{
    expectError("@regate-spec v1\n[scenario a]\n[scenario b]\n"
                "family = dlrm\nmodel = s\nbatch = 1\nchips = 1\n",
                "scenario 'a' is empty", 2);
}

TEST(SpecParser, DuplicateSection)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
                "model = s\nbatch = 1\nchips = 1\n[scenario a]\n",
                "duplicate scenario section 'a'", 7);
}

TEST(SpecParser, DuplicateKey)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
                "model = s\nbatch = 1\nbatch = 2\nchips = 1\n",
                "duplicate key 'batch'", 6);
}

TEST(SpecParser, KeyOutsideSection)
{
    expectError("@regate-spec v1\nfamily = dlrm\n",
                "outside any [scenario NAME] section", 2);
}

TEST(SpecParser, NoSections)
{
    expectError("@regate-spec v1\n# just a comment\n",
                "no [scenario NAME] sections", 2);
}

TEST(SpecParser, UnknownModelNamesScenario)
{
    expectError("@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
                "model = xxl\nbatch = 1\nchips = 1\n",
                "unknown dlrm model 'xxl'", 2);
}

TEST(SpecParser, ListAndRangeExpansion)
{
    auto file = parseSpecText(
        "@regate-spec v1\n[scenario sweep]\nfamily = dlrm\n"
        "model = s\nbatch = 16,32\nchips = 1..4:*2\n");
    // 2 batches x 3 chip points, batch varying slowest.
    ASSERT_EQ(file.scenarios.size(), 6u);
    EXPECT_EQ(file.scenarios[0]->name, "sweep@batch=16@chips=1");
    EXPECT_EQ(file.scenarios[0]->batch, 16);
    EXPECT_EQ(file.scenarios[0]->chips, 1);
    EXPECT_EQ(file.scenarios[5]->name, "sweep@batch=32@chips=4");
    EXPECT_EQ(file.scenarios[5]->batch, 32);
    EXPECT_EQ(file.scenarios[5]->chips, 4);
}

TEST(SpecParser, ArithmeticRange)
{
    auto file = parseSpecText(
        "@regate-spec v1\n[scenario sweep]\nfamily = dlrm\n"
        "model = s\nbatch = 8\nchips = 2..6:+2\n");
    ASSERT_EQ(file.scenarios.size(), 3u);
    EXPECT_EQ(file.scenarios[0]->chips, 2);
    EXPECT_EQ(file.scenarios[1]->chips, 4);
    EXPECT_EQ(file.scenarios[2]->chips, 6);
}

TEST(SpecParser, CanonicalRoundTrip)
{
    // A deliberately messy spec: comments, blank lines, gating
    // overrides, explicit parallelism, MoE extras, and a sweep.
    auto first = parseSpecText(
        "@regate-spec v1\n"
        "# comment\n\n"
        "[scenario mix]\n"
        "family = moe\n"
        "model   =   8b   # inline comment\n"
        "experts = 8\n"
        "batch = 16,32\n"
        "chips = 8\n"
        "dp = 1\n"
        "tp = 8\n"
        "pp = 1\n"
        "sram_sleep = 0.25\n"
        "\n"
        "[scenario plain]\n"
        "family = diffusion\n"
        "model = gligen\n"
        "batch = 256\n"
        "chips = 64\n");
    auto second = parseSpecText(first.canonicalText);

    // Reparsing the canonical dump yields identical scenarios, an
    // identical dump, and therefore an identical digest — textual
    // variants of the same scenarios share one fleet identity.
    ASSERT_EQ(second.scenarios.size(), first.scenarios.size());
    for (std::size_t i = 0; i < first.scenarios.size(); ++i) {
        EXPECT_TRUE(first.scenarios[i]->sameScenario(
            *second.scenarios[i]))
            << first.scenarios[i]->identityText() << "\nvs\n"
            << second.scenarios[i]->identityText();
        EXPECT_EQ(first.scenarios[i]->name,
                  second.scenarios[i]->name);
    }
    EXPECT_EQ(second.canonicalText, first.canonicalText);
    EXPECT_EQ(second.digest, first.digest);
}

TEST(SpecParser, DigestIgnoresFormattingButNotContent)
{
    auto a = parseSpecText(
        "@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
        "model = s\nbatch = 8\nchips = 1\n");
    auto b = parseSpecText(
        "@regate-spec v1\n#hi\n[scenario a]\n  family=dlrm\n"
        "model =s\n\nbatch =  8\nchips = 1   # pod\n");
    EXPECT_EQ(a.digest, b.digest);

    auto c = parseSpecText(
        "@regate-spec v1\n[scenario a]\nfamily = dlrm\n"
        "model = s\nbatch = 16\nchips = 1\n");
    EXPECT_NE(a.digest, c.digest);
}

TEST(SpecParser, MissingFileNamed)
{
    try {
        parseSpecFile("/nonexistent/regate.spec");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "/nonexistent/regate.spec"),
                  std::string::npos);
    }
}

}  // namespace
}  // namespace models
}  // namespace regate
