/**
 * @file
 * Unit tests for the orchestration subsystem's pure logic: the shard
 * planner and plan-file round trip, the retry scheduler's dynamic
 * assignment / banned-slot / bounded-retry rules, and the streaming
 * merger's validate-then-absorb behavior, including byte-identity of
 * its merged document with the single-shard document. The
 * process-driving half (spawn, kill, timeout, resume) is covered end
 * to end by tests/orch_check.py against real worker binaries.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.h"
#include "orch/fs.h"
#include "orch/planner.h"
#include "orch/retry.h"
#include "orch/streaming_merge.h"
#include "sim/serialize.h"
#include "sim/sweep.h"

namespace regate {
namespace orch {
namespace {

TEST(Planner, ShardCountScalesWithWorkersAndGranularity)
{
    EXPECT_EQ(planShardCount(100, 4, 4), 16);
    EXPECT_EQ(planShardCount(100, 2, 3), 6);
    // Never more shards than cases: an empty shard is overhead.
    EXPECT_EQ(planShardCount(5, 4, 4), 5);
    EXPECT_EQ(planShardCount(1, 8, 8), 1);
    // And never fewer than one, even for an empty grid.
    EXPECT_EQ(planShardCount(0, 4, 4), 1);
}

TEST(Planner, RejectsBadKnobs)
{
    EXPECT_THROW(planShardCount(10, 0, 4), ConfigError);
    EXPECT_THROW(planShardCount(10, 4, 0), ConfigError);
    EXPECT_THROW(planShardCount(10, -1, 4), ConfigError);
}

TEST(Planner, PlanFileRoundTrips)
{
    OrchPlan plan;
    plan.bin = "fig21_sens_leakage";
    plan.cases = 123;
    plan.shards = 16;
    auto back = planFromText(planToText(plan));
    EXPECT_EQ(back.bin, plan.bin);
    EXPECT_EQ(back.cases, plan.cases);
    EXPECT_EQ(back.shards, plan.shards);
}

TEST(Planner, PlanFileRejectsGarbage)
{
    const std::string header = "regate-orch-plan v1\nbin=f\n";
    EXPECT_THROW(planFromText(""), ConfigError);
    EXPECT_THROW(planFromText("not a plan\ncases=1\nshards=1\n"),
                 ConfigError);
    // Missing bin=, cases=, or shards=.
    EXPECT_THROW(
        planFromText("regate-orch-plan v1\ncases=1\nshards=1\n"),
        ConfigError);
    EXPECT_THROW(planFromText(header + "cases=1\n"), ConfigError);
    EXPECT_THROW(planFromText(header + "cases=x\nshards=1\n"),
                 ConfigError);
    // Trailing garbage after a digit prefix is corruption too.
    EXPECT_THROW(planFromText(header + "cases=12x\nshards=1\n"),
                 ConfigError);
    EXPECT_THROW(planFromText(header + "cases=1\nshards=4.9\n"),
                 ConfigError);
    EXPECT_THROW(planFromText(header + "cases=1\nshards=0\n"),
                 ConfigError);
    EXPECT_THROW(planFromText(header + "cases=1\nshards=1\nw=2\n"),
                 ConfigError);
}

TEST(Scheduler, DrainsEveryShardOnce)
{
    ShardScheduler sched({0, 1, 2, 3, 4}, 2, RetryPolicy{});
    std::vector<int> order;
    while (!sched.allDone()) {
        int shard = sched.nextFor(static_cast<int>(order.size()) % 2);
        ASSERT_GE(shard, 0);
        order.push_back(shard);
        sched.onSuccess(shard);
    }
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
    EXPECT_EQ(sched.completed(), 5u);
}

TEST(Scheduler, FailedShardIsWithheldFromItsSlot)
{
    ShardScheduler sched({7}, 2, RetryPolicy{});
    EXPECT_EQ(sched.nextFor(0), 7);
    EXPECT_TRUE(sched.onFailure(7, 0));
    // The failing slot cannot take the retry while another slot
    // exists; the other slot can.
    EXPECT_EQ(sched.nextFor(0), -1);
    EXPECT_EQ(sched.nextFor(1), 7);
    sched.onSuccess(7);
    EXPECT_TRUE(sched.allDone());
}

TEST(Scheduler, BanSkipsToAnotherPendingShard)
{
    ShardScheduler sched({3, 8}, 2, RetryPolicy{});
    EXPECT_EQ(sched.nextFor(0), 3);
    EXPECT_TRUE(sched.onFailure(3, 0));
    // Slot 0 skips the shard it just failed and picks up fresh work.
    EXPECT_EQ(sched.nextFor(0), 8);
    EXPECT_EQ(sched.nextFor(1), 3);
}

TEST(Scheduler, SingleSlotRetriesInPlace)
{
    ShardScheduler sched({0}, 1, RetryPolicy{});
    EXPECT_EQ(sched.nextFor(0), 0);
    EXPECT_TRUE(sched.onFailure(0, 0));
    // Only one slot exists — the ban would deadlock, so it is off.
    EXPECT_EQ(sched.nextFor(0), 0);
}

TEST(Scheduler, RetiredSlotsShrinkTheBanRule)
{
    // Three slots; slot 2's transport (an agent) dies, then slot 1's.
    RetryPolicy generous;
    generous.maxAttempts = 5;  // Room for every failure below.
    ShardScheduler sched({0}, 3, generous);
    EXPECT_EQ(sched.liveSlots(), 3);
    EXPECT_EQ(sched.nextFor(2), 0);
    EXPECT_TRUE(sched.onFailure(0, 2));
    sched.retireSlot();
    EXPECT_EQ(sched.liveSlots(), 2);
    // The retry lands on a surviving slot (the dead one is simply
    // never offered again by the orchestrator).
    EXPECT_EQ(sched.nextFor(0), 0);
    EXPECT_TRUE(sched.onFailure(0, 0));
    // Slot 1's transport dies while idle; only slot 0 survives,
    // and the shard is banned from it.
    sched.retireSlot();
    EXPECT_EQ(sched.liveSlots(), 1);
    // Down to one live slot, the banned-slot rule must yield —
    // otherwise the last survivor could never take the retry.
    EXPECT_EQ(sched.nextFor(0), 0);
    EXPECT_TRUE(sched.onFailure(0, 0));
    // An agent reconnects (or a joiner dials in): reviveSlot
    // re-grows the live count, and the ban rule re-engages — the
    // shard that just failed on slot 0 now waits for the newcomer
    // instead of bouncing straight back.
    sched.reviveSlot();
    EXPECT_EQ(sched.liveSlots(), 2);
    EXPECT_EQ(sched.nextFor(0), -1);
    EXPECT_EQ(sched.nextFor(2), 0);
    sched.onSuccess(0);
    EXPECT_TRUE(sched.allDone());
}

TEST(Scheduler, SpeculativeAttemptsChargeTheRetryBudget)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    ShardScheduler sched({0, 1}, 2, policy);
    EXPECT_FALSE(sched.queueEmpty());
    EXPECT_EQ(sched.nextFor(0), 0);
    EXPECT_EQ(sched.nextFor(1), 1);
    // Both shards in flight: the queue is dry, which is the
    // work-stealing precondition.
    EXPECT_TRUE(sched.queueEmpty());

    // Stealing shard 0 onto an idle slot charges a real attempt
    // (the bounded-retry budget covers speculation too) and leaves
    // the queue alone.
    EXPECT_EQ(sched.beginSpeculative(0), 2);
    EXPECT_EQ(sched.attempts(0), 2);
    EXPECT_TRUE(sched.queueEmpty());

    // The budget is shared between failures and speculation: one
    // more speculative copy uses the last attempt, after which
    // speculation is a contract violation the scheduler refuses.
    EXPECT_EQ(sched.beginSpeculative(0), 3);
    EXPECT_THROW(sched.beginSpeculative(0), ConfigError);

    sched.onSuccess(0);
    sched.onSuccess(1);
    EXPECT_TRUE(sched.allDone());
}

TEST(Scheduler, ZeroSlotElasticFleetStartsEmpty)
{
    // A --join-port-only fleet opens with no slots at all and grows
    // via reviveSlot as agents dial in.
    ShardScheduler sched({0}, 0, RetryPolicy{});
    EXPECT_EQ(sched.liveSlots(), 0);
    sched.reviveSlot();
    EXPECT_EQ(sched.liveSlots(), 1);
    EXPECT_EQ(sched.nextFor(0), 0);
    sched.onSuccess(0);
    EXPECT_TRUE(sched.allDone());
}

TEST(Scheduler, BoundedRetryExhausts)
{
    RetryPolicy policy;
    policy.maxAttempts = 2;
    ShardScheduler sched({0}, 2, policy);
    EXPECT_EQ(sched.nextFor(0), 0);
    EXPECT_EQ(sched.attempts(0), 1);
    EXPECT_TRUE(sched.onFailure(0, 0));
    EXPECT_EQ(sched.nextFor(1), 0);
    EXPECT_EQ(sched.attempts(0), 2);
    EXPECT_FALSE(sched.onFailure(0, 1));
    EXPECT_FALSE(sched.allDone());
}

/** Fixture with a per-test scratch directory and a tiny real grid. */
class StreamingMergerTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        dir_ = std::filesystem::path(::testing::TempDir()) /
               ("orch_merge_" +
                std::string(::testing::UnitTest::GetInstance()
                                ->current_test_info()
                                ->name()));
        std::filesystem::create_directories(dir_);
        grid_ = sim::makeGrid({models::Workload::Prefill8B,
                               models::Workload::DlrmS},
                              {arch::NpuGeneration::B,
                               arch::NpuGeneration::D});
        results_ = sim::SweepRunner::runSerial(grid_);
    }

    void
    TearDown() override
    {
        std::error_code ec;
        std::filesystem::remove_all(dir_, ec);
    }

    std::string
    writeShardFile(int index, int count)
    {
        auto range = sim::shardRange(grid_.size(), index, count);
        std::vector<sim::WorkloadReport> slice(
            results_.begin() +
                static_cast<std::ptrdiff_t>(range.begin),
            results_.begin() +
                static_cast<std::ptrdiff_t>(range.end));
        auto path = (dir_ / shardFileName(index)).string();
        writeFile(path,
                  sim::writeRunShard(slice, range.begin,
                                     grid_.size(), index, count));
        return path;
    }

    std::filesystem::path dir_;
    std::vector<sim::SweepCase> grid_;
    std::vector<sim::WorkloadReport> results_;
};

TEST_F(StreamingMergerTest, MergedDocumentEqualsSingleShardDocument)
{
    StreamingMerger merger(grid_.size());
    EXPECT_FALSE(merger.complete());
    // Absorb out of order, as shards land in a real run.
    merger.addShardFile(writeShardFile(1, 3), 1, 3);
    merger.addShardFile(writeShardFile(2, 3), 2, 3);
    EXPECT_FALSE(merger.complete());
    merger.addShardFile(writeShardFile(0, 3), 0, 3);
    ASSERT_TRUE(merger.complete());
    EXPECT_EQ(merger.mergedDocument(),
              sim::writeRunShard(results_, 0, grid_.size(), 0, 1));
}

TEST_F(StreamingMergerTest, IncompleteMergeRefusesToAssemble)
{
    StreamingMerger merger(grid_.size());
    merger.addShardFile(writeShardFile(0, 2), 0, 2);
    EXPECT_THROW(merger.mergedDocument(), ConfigError);
}

TEST_F(StreamingMergerTest, RejectsCorruptedShardFile)
{
    auto path = writeShardFile(0, 2);
    // Flip one digit of a serialized counter; the entry digest
    // must catch it.
    auto text = readFile(path);
    auto at = text.find("\"cycles\":");
    ASSERT_NE(at, std::string::npos);
    char &digit = text[at + 9];
    digit = digit == '9' ? '1' : static_cast<char>(digit + 1);
    writeFile(path, text);

    StreamingMerger merger(grid_.size());
    try {
        merger.addShardFile(path, 0, 2);
        FAIL() << "corrupted shard file was accepted";
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("digest mismatch"),
                  std::string::npos)
            << e.what();
    }
    // A rejected file leaves the merger untouched.
    EXPECT_EQ(merger.coveredCases(), 0u);
}

TEST_F(StreamingMergerTest, RejectsWrongShardHeader)
{
    auto path = writeShardFile(0, 2);
    StreamingMerger merger(grid_.size());
    EXPECT_THROW(merger.addShardFile(path, 1, 2), ConfigError);
    EXPECT_THROW(merger.addShardFile(path, 0, 3), ConfigError);
}

TEST_F(StreamingMergerTest, RejectsDoubleAbsorption)
{
    auto path = writeShardFile(0, 2);
    StreamingMerger merger(grid_.size());
    merger.addShardFile(path, 0, 2);
    EXPECT_THROW(merger.addShardFile(path, 0, 2), ConfigError);
    EXPECT_EQ(merger.coveredCases(),
              sim::shardRange(grid_.size(), 0, 2).size());
}

TEST_F(StreamingMergerTest, RejectsCaseCountMismatch)
{
    auto path = writeShardFile(0, 2);
    StreamingMerger merger(grid_.size() + 1);
    EXPECT_THROW(merger.addShardFile(path, 0, 2), ConfigError);
}

}  // namespace
}  // namespace orch
}  // namespace regate
