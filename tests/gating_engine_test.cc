/**
 * @file
 * Tests for the analytical gating engine: per-mode semantics, BET
 * filtering, detection-window waste, and the energy-ordering
 * invariants that underpin Fig. 17.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "core/gating_engine.h"

namespace regate {
namespace core {
namespace {

using arch::GatedUnit;
using arch::GatingParams;

UnitSpec
vuSpec(double watts = 5.0)
{
    return {GatedUnit::Vu, watts, 1e-9};
}

TEST(GatingEngine, NoneKeepsFullStaticEnergy)
{
    GatingParams p;
    auto t = ActivityTimeline::periodic(1000, 0, 2, 16);
    auto r = evaluateTimeline(t, vuSpec(), GatingMode::None, p);
    EXPECT_NEAR(r.staticEnergy, r.staticEnergyNoPg,
                1e-12 * r.staticEnergyNoPg);
    EXPECT_EQ(r.gatedCycles, 0u);
    EXPECT_EQ(r.exposedDelay, 0u);
    EXPECT_NEAR(r.saved(), 0.0, 1e-12 * r.staticEnergyNoPg);
}

TEST(GatingEngine, IdealGatesEverythingFree)
{
    GatingParams p;
    auto t = ActivityTimeline::periodic(1000, 0, 2, 16);
    auto r = evaluateTimeline(t, vuSpec(), GatingMode::Ideal, p);
    EXPECT_EQ(r.gatedCycles, t.idleCycles());
    EXPECT_NEAR(r.staticEnergy,
                5.0 * 1e-9 * static_cast<double>(t.activeCycles()),
                1e-15);
    EXPECT_EQ(r.exposedDelay, 0u);
    EXPECT_DOUBLE_EQ(r.transitionEnergy, 0.0);
}

TEST(GatingEngine, SwExactRespectsBet)
{
    GatingParams p;
    // VU BET = 32: 14-cycle gaps (Fig. 15 pattern) are NOT gated.
    auto t = ActivityTimeline::periodic(160, 0, 2, 16);
    auto r = evaluateTimeline(t, vuSpec(), GatingMode::SwExact, p);
    EXPECT_EQ(r.gatedCycles, 0u);
    EXPECT_NEAR(r.saved(), 0.0, 1e-12 * r.staticEnergyNoPg);

    // 100-cycle gaps pass the BET and 2x-delay rules.
    auto t2 = ActivityTimeline::periodic(1040, 0, 4, 104);
    auto r2 = evaluateTimeline(t2, vuSpec(), GatingMode::SwExact, p);
    EXPECT_GT(r2.gatedCycles, 0u);
    EXPECT_GT(r2.saved(), 0.0);
    EXPECT_EQ(r2.exposedDelay, 0u);  // Compiler pre-wakes.
}

TEST(GatingEngine, SwExactGatedCyclesExcludeTransitions)
{
    GatingParams p;  // VU delay = 2.
    auto t = ActivityTimeline::fromIntervals(200, {{0, 10}, {110, 120}});
    // One inner gap of 100 plus a trailing gap of 80; both > BET.
    auto r = evaluateTimeline(t, vuSpec(), GatingMode::SwExact, p);
    // Each gated interval loses 2 * delay = 4 cycles to transitions.
    EXPECT_EQ(r.gatedCycles, (100u - 4) + (80u - 4));
    EXPECT_EQ(r.gateEvents, 2u);
}

TEST(GatingEngine, HwDetectWastesWindowAndExposesDelay)
{
    GatingParams p;  // VU window = 10, delay = 2.
    auto t = ActivityTimeline::fromIntervals(200, {{0, 10}, {110, 120}});
    auto r = evaluateTimeline(t, vuSpec(), GatingMode::HwDetect, p);
    EXPECT_EQ(r.gatedCycles, (100u - 10) + (80u - 10));
    EXPECT_EQ(r.exposedDelay, 2u * 2);
    EXPECT_EQ(r.gateEvents, 2u);
    EXPECT_GT(r.saved(), 0.0);
}

TEST(GatingEngine, HwDetectGatesBelowBreakEven)
{
    GatingParams p;
    // Gaps of 14 >= window 10 but < BET 32: hardware gates anyway and
    // can lose energy -- ReGate-Base's weakness (§6.2).
    auto t = ActivityTimeline::periodic(160, 0, 2, 16);
    auto r = evaluateTimeline(t, vuSpec(), GatingMode::HwDetect, p);
    EXPECT_GT(r.gateEvents, 0u);
    EXPECT_LT(r.saved(), 0.0);
}

TEST(GatingEngine, ModeOrderingInvariant)
{
    GatingParams p;
    // Long gaps: every mode should save, with Ideal >= SwExact >=
    // HwDetect >= None.
    for (Cycles period : {200u, 1000u, 5000u}) {
        auto t = ActivityTimeline::periodic(period * 10, 0, 20, period);
        auto none = evaluateTimeline(t, vuSpec(), GatingMode::None, p);
        auto hw = evaluateTimeline(t, vuSpec(), GatingMode::HwDetect, p);
        auto sw = evaluateTimeline(t, vuSpec(), GatingMode::SwExact, p);
        auto ideal = evaluateTimeline(t, vuSpec(), GatingMode::Ideal, p);
        EXPECT_GE(ideal.saved(), sw.saved()) << period;
        EXPECT_GE(sw.saved(), hw.saved()) << period;
        EXPECT_GE(hw.saved(), none.saved()) << period;
        EXPECT_NEAR(none.saved(), 0.0,
                    1e-12 * none.staticEnergyNoPg);
    }
}

TEST(GatingEngine, EnergyNeverExceedsNoPg)
{
    GatingParams p;
    auto t = ActivityTimeline::periodic(100000, 0, 50, 5000);
    for (auto mode : {GatingMode::SwExact, GatingMode::Ideal}) {
        auto r = evaluateTimeline(t, vuSpec(), mode, p);
        EXPECT_LE(r.staticEnergy, r.staticEnergyNoPg);
    }
}

TEST(GatingEngine, ScalesLinearlyWithPower)
{
    GatingParams p;
    auto t = ActivityTimeline::periodic(10000, 0, 10, 1000);
    auto r1 = evaluateTimeline(t, vuSpec(1.0), GatingMode::SwExact, p);
    auto r2 = evaluateTimeline(t, vuSpec(2.0), GatingMode::SwExact, p);
    EXPECT_NEAR(r2.staticEnergy, 2 * r1.staticEnergy, 1e-12);
    EXPECT_NEAR(r2.saved(), 2 * r1.saved(), 1e-12);
}

TEST(GatingEngine, DelayScalingReducesSavings)
{
    // Fig. 22: longer wake-up delays -> larger BET -> fewer gated
    // intervals and less saving.
    auto t = ActivityTimeline::periodic(100000, 0, 10, 120);
    GatingParams p1;
    GatingParams p4;
    p4.setDelayScale(4.0);
    auto r1 = evaluateTimeline(t, vuSpec(), GatingMode::SwExact, p1);
    auto r4 = evaluateTimeline(t, vuSpec(), GatingMode::SwExact, p4);
    EXPECT_GT(r1.saved(), r4.saved());
}

TEST(GatingEngine, LeakageRatioSweep)
{
    // Fig. 21: higher gated leakage -> smaller savings.
    auto t = ActivityTimeline::periodic(100000, 0, 10, 2000);
    double prev = 1e18;
    for (double leak : {0.03, 0.1, 0.2, 0.4, 0.6}) {
        arch::LeakageRatios r;
        r.logicOff = leak;
        GatingParams p(r);
        auto res = evaluateTimeline(t, vuSpec(), GatingMode::SwExact, p);
        EXPECT_LT(res.saved(), prev);
        prev = res.saved();
    }
}

TEST(GatingEngine, ResultAccumulation)
{
    GatingParams p;
    auto t = ActivityTimeline::periodic(1000, 0, 10, 200);
    auto a = evaluateTimeline(t, vuSpec(), GatingMode::SwExact, p);
    GatingResult sum = a;
    sum += a;
    EXPECT_EQ(sum.span, 2 * a.span);
    EXPECT_NEAR(sum.staticEnergy, 2 * a.staticEnergy, 1e-15);
    EXPECT_EQ(sum.gateEvents, 2 * a.gateEvents);
}

TEST(GatingEngine, RejectsBadSpec)
{
    GatingParams p;
    auto t = ActivityTimeline::allActive(10);
    UnitSpec bad{GatedUnit::Vu, -1.0, 1e-9};
    EXPECT_THROW(evaluateTimeline(t, bad, GatingMode::None, p),
                 ConfigError);
    UnitSpec bad2{GatedUnit::Vu, 1.0, 0.0};
    EXPECT_THROW(evaluateTimeline(t, bad2, GatingMode::None, p),
                 ConfigError);
}

}  // namespace
}  // namespace core
}  // namespace regate
