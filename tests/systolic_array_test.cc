/**
 * @file
 * Tests for the cycle-accurate systolic array (§4.1, Figs. 11-13):
 * functional correctness with and without power gating, power-state
 * accounting, and the Fig. 10 underutilization cases.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "sa/systolic_array.h"

namespace regate {
namespace sa {
namespace {

Matrix
iota(int rows, int cols, double base = 1.0)
{
    Matrix m(rows, cols);
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            m.at(r, c) = base + r * cols + c;
    return m;
}

void
expectEqual(const Matrix &a, const Matrix &b)
{
    ASSERT_EQ(a.rows(), b.rows());
    ASSERT_EQ(a.cols(), b.cols());
    for (int r = 0; r < a.rows(); ++r)
        for (int c = 0; c < a.cols(); ++c)
            EXPECT_DOUBLE_EQ(a.at(r, c), b.at(r, c))
                << "(" << r << "," << c << ")";
}

TEST(Matrix, ReferenceMatmul)
{
    Matrix x(2, 2), w(2, 2);
    x.at(0, 0) = 1;
    x.at(0, 1) = 2;
    x.at(1, 0) = 3;
    x.at(1, 1) = 4;
    w.at(0, 0) = 5;
    w.at(0, 1) = 6;
    w.at(1, 0) = 7;
    w.at(1, 1) = 8;
    auto out = matmulReference(x, w);
    EXPECT_DOUBLE_EQ(out.at(0, 0), 19);
    EXPECT_DOUBLE_EQ(out.at(1, 1), 50);
    EXPECT_THROW(matmulReference(x, Matrix(3, 2)), ConfigError);
}

TEST(SystolicArray, FullTileCorrectness)
{
    SystolicArray sa(8, /*gating=*/true);
    auto w = iota(8, 8);
    auto x = iota(6, 8, 0.5);
    sa.loadWeights(w);
    expectEqual(sa.run(x), matmulReference(x, w));
}

TEST(SystolicArray, GatingDoesNotChangeResults)
{
    for (int k : {1, 3, 8}) {
        for (int n : {1, 5, 8}) {
            auto w = iota(k, n);
            auto x = iota(4, k);
            SystolicArray gated(8, true);
            SystolicArray flat(8, false);
            gated.loadWeights(w);
            flat.loadWeights(w);
            expectEqual(gated.run(x), flat.run(x));
        }
    }
}

TEST(SystolicArray, SmallKGatesTopRows)
{
    // Fig. 10 case 2: K < width pads at the top; rows gate off.
    SystolicArray sa(8, true);
    sa.loadWeights(iota(3, 8));
    EXPECT_EQ(sa.stats().rowsOn, 3);
    EXPECT_EQ(sa.stats().colsOn, 8);
    for (int r = 0; r < 5; ++r)
        EXPECT_FALSE(sa.rowOn()[r]) << r;
}

TEST(SystolicArray, SmallNGatesRightColumns)
{
    // Fig. 10 case 3: N < width pads at the right; columns gate off.
    SystolicArray sa(8, true);
    sa.loadWeights(iota(8, 2));
    EXPECT_EQ(sa.stats().colsOn, 2);
    EXPECT_EQ(sa.stats().rowsOn, 8);
    EXPECT_TRUE(sa.colOn()[0]);
    EXPECT_FALSE(sa.colOn()[2]);
}

TEST(SystolicArray, OffPesNeverCountOnCycles)
{
    SystolicArray sa(8, true);
    sa.loadWeights(iota(2, 2));
    auto x = iota(5, 2);
    sa.run(x);
    const auto &st = sa.stats();
    // 2x2 active PEs out of 64: ON cycles = macs = 5*2*2.
    EXPECT_EQ(st.peOnCycles, 20u);
    EXPECT_EQ(st.macs, 20u);
    // OFF PE-cycles cover the 60 gated PEs for the whole run.
    EXPECT_EQ(st.peOffCycles, 60u * st.computeCycles);
}

TEST(SystolicArray, UngatedKeepsAllPesOn)
{
    SystolicArray sa(8, false);
    sa.loadWeights(iota(2, 2));
    sa.run(iota(5, 2));
    const auto &st = sa.stats();
    EXPECT_EQ(st.peOnCycles, 64u * st.computeCycles);
    EXPECT_EQ(st.peWOnCycles, 0u);
    EXPECT_EQ(st.peOffCycles, 0u);
}

TEST(SystolicArray, SmallMDiagonalWake)
{
    // Fig. 10 case 1 / Fig. 13: M smaller than the array; each PE is
    // ON for exactly M cycles, W_on the rest of the run.
    SystolicArray sa(8, true);
    sa.loadWeights(iota(8, 8));
    sa.run(iota(2, 8));
    const auto &st = sa.stats();
    EXPECT_EQ(st.peOnCycles, 2u * 64u);
    EXPECT_EQ(st.peWOnCycles, 64u * (st.computeCycles - 2));
    EXPECT_EQ(st.peOffCycles, 0u);
}

TEST(SystolicArray, SparseZeroColumnsGateOff)
{
    // Actual zero weights (not just padding) also gate: a zero
    // column at the right edge of the loaded tile powers off.
    Matrix w(4, 4, 0.0);
    for (int k = 0; k < 4; ++k)
        for (int n = 0; n < 2; ++n)
            w.at(k, n) = 1.0 + k + n;
    SystolicArray sa(4, true);
    sa.loadWeights(w);
    EXPECT_EQ(sa.stats().colsOn, 2);
    auto x = iota(3, 4);
    expectEqual(sa.run(x), matmulReference(x, w));
}

TEST(SystolicArray, WeightLoadTakesKCycles)
{
    SystolicArray sa(8, true);
    sa.loadWeights(iota(5, 8));
    EXPECT_EQ(sa.stats().weightLoadCycles, 5u);
}

TEST(SystolicArray, SpatialUtilizationMetric)
{
    // Full-width tile with large M approaches 100%; 1x1 tile is tiny.
    SystolicArray big(4, true);
    big.loadWeights(iota(4, 4));
    big.run(iota(64, 4));
    EXPECT_GT(big.stats().spatialUtilization(), 0.85);

    SystolicArray tiny(4, true);
    tiny.loadWeights(iota(1, 1));
    tiny.run(iota(4, 1));
    EXPECT_LT(tiny.stats().spatialUtilization(), 0.2);
}

TEST(SystolicArray, RejectsBadShapes)
{
    SystolicArray sa(4, true);
    EXPECT_THROW(sa.run(iota(2, 2)), ConfigError);  // No weights.
    EXPECT_THROW(sa.loadWeights(iota(5, 2)), ConfigError);
    EXPECT_THROW(sa.loadWeights(iota(2, 5)), ConfigError);
    sa.loadWeights(iota(2, 2));
    EXPECT_THROW(sa.run(iota(2, 3)), ConfigError);  // K mismatch.
    EXPECT_THROW(SystolicArray(0, true), ConfigError);
}

}  // namespace
}  // namespace sa
}  // namespace regate
