/**
 * @file
 * Tests for the tensor/operator IR.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "graph/graph.h"
#include "graph/tensor.h"

namespace regate {
namespace graph {
namespace {

TEST(Tensor, NumelAndBytes)
{
    Tensor t{"x", {4, 8, 2}, DType::BF16};
    EXPECT_EQ(t.numel(), 64);
    EXPECT_EQ(t.bytes(), 128);
    Tensor f{"y", {3}, DType::FP32};
    EXPECT_EQ(f.bytes(), 12);
    Tensor scalar{"s", {}, DType::INT8};
    EXPECT_EQ(scalar.numel(), 1);
}

TEST(Tensor, DtypeHelpers)
{
    EXPECT_EQ(dtypeBytes(DType::BF16), 2);
    EXPECT_EQ(dtypeBytes(DType::INT32), 4);
    EXPECT_EQ(dtypeName(DType::FP32), "fp32");
}

TEST(Operator, MacsAndFlops)
{
    Operator op;
    op.kind = OpKind::MatMul;
    op.batch = 2;
    op.m = 4;
    op.k = 8;
    op.n = 16;
    EXPECT_DOUBLE_EQ(op.macs(), 1024.0);
    EXPECT_DOUBLE_EQ(op.flops(), 2048.0);

    Operator ew;
    ew.kind = OpKind::Elementwise;
    ew.vuOps = 100;
    EXPECT_DOUBLE_EQ(ew.macs(), 0.0);
    EXPECT_DOUBLE_EQ(ew.flops(), 100.0);
}

TEST(Operator, Validation)
{
    Operator op;
    op.kind = OpKind::MatMul;
    op.m = 0;
    EXPECT_THROW(op.validate(), ConfigError);

    Operator coll;
    coll.kind = OpKind::Collective;
    EXPECT_THROW(coll.validate(), ConfigError);
    coll.coll = CollKind::AllReduce;
    coll.collBytes = 100;
    EXPECT_NO_THROW(coll.validate());

    Operator emb;
    emb.kind = OpKind::Embedding;
    EXPECT_THROW(emb.validate(), ConfigError);
}

TEST(OperatorGraph, Totals)
{
    OperatorGraph g;
    g.name = "test";
    Block b;
    b.name = "layer";
    b.repeat = 3;
    Operator mm;
    mm.kind = OpKind::MatMul;
    mm.m = 10;
    mm.k = 10;
    mm.n = 10;
    mm.hbmReadBytes = 100;
    mm.validate();
    b.ops.push_back(mm);
    g.blocks.push_back(b);

    EXPECT_EQ(g.opCount(), 3u);
    EXPECT_DOUBLE_EQ(g.totalFlops(), 3 * 2000.0);
    EXPECT_DOUBLE_EQ(g.totalHbmBytes(), 300.0);
    EXPECT_NO_THROW(g.validate());
}

TEST(OperatorGraph, ValidationCatchesEmpties)
{
    OperatorGraph g;
    g.name = "bad";
    EXPECT_THROW(g.validate(), ConfigError);
    Block b;
    b.name = "empty";
    g.blocks.push_back(b);
    EXPECT_THROW(g.validate(), ConfigError);
}

TEST(OpKindNames, AllDistinct)
{
    EXPECT_EQ(opKindName(OpKind::MatMul), "MatMul");
    EXPECT_EQ(opKindName(OpKind::Collective), "Collective");
    EXPECT_EQ(opKindName(OpKind::Transfer), "Transfer");
}

}  // namespace
}  // namespace graph
}  // namespace regate
