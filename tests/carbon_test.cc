/**
 * @file
 * Tests for the carbon model (§6.6): operational carbon reduction
 * exceeds busy-energy savings, and power gating extends the optimal
 * device lifespan (Fig. 24/25).
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "carbon/carbon_model.h"
#include "carbon/lifespan.h"

namespace regate {
namespace carbon {
namespace {

using arch::NpuGeneration;
using models::Workload;
using sim::Policy;

TEST(Carbon, OperationalCarbonPositive)
{
    auto rep = sim::simulateWorkload(Workload::DlrmL,
                                     NpuGeneration::D);
    EXPECT_GT(operationalCarbonPerRun(rep, Policy::NoPG), 0.0);
    EXPECT_GT(operationalCarbonPerUnit(rep, Policy::NoPG), 0.0);
}

TEST(Carbon, ReductionExceedsBusySavings)
{
    // Fig. 24: carbon reductions (31%-63%) are much higher than the
    // energy savings because idle chips are almost pure static power.
    auto rep = sim::simulateWorkload(Workload::Prefill405B,
                                     NpuGeneration::D);
    double busy_saving = rep.run().savingVsNoPg(Policy::Full);
    double carbon_red =
        operationalCarbonReduction(rep, Policy::Full);
    EXPECT_GT(carbon_red, busy_saving);
    EXPECT_GT(carbon_red, 0.15);
    EXPECT_LT(carbon_red, 0.70);
}

TEST(Carbon, ReductionOrderingAcrossPolicies)
{
    auto rep = sim::simulateWorkload(Workload::DiTXL,
                                     NpuGeneration::D);
    double base = operationalCarbonReduction(rep, Policy::Base);
    double full = operationalCarbonReduction(rep, Policy::Full);
    double ideal = operationalCarbonReduction(rep, Policy::Ideal);
    EXPECT_GT(base, 0.0);
    EXPECT_GE(full, base);
    EXPECT_GE(ideal, full);
}

TEST(Carbon, AnnualEfficiencyFactorInRange)
{
    double f = annualEfficiencyFactor(Workload::Prefill8B);
    EXPECT_GT(f, 0.5);
    EXPECT_LT(f, 1.0);
}

TEST(Lifespan, EmbodiedAmortizesWithLongerLife)
{
    auto rep = sim::simulateWorkload(Workload::DlrmL,
                                     NpuGeneration::D);
    auto an = analyzeLifespan(rep, Policy::NoPG, 0.9);
    ASSERT_EQ(an.points.size(), 10u);
    for (std::size_t i = 1; i < an.points.size(); ++i) {
        EXPECT_LT(an.points[i].embodiedPerUnit,
                  an.points[i - 1].embodiedPerUnit);
        // Older fleets burn relatively more operational carbon.
        EXPECT_GE(an.points[i].operationalPerUnit,
                  an.points[i - 1].operationalPerUnit - 1e-15);
    }
}

TEST(Lifespan, OptimumIsInterior)
{
    auto rep = sim::simulateWorkload(Workload::Train405B,
                                     NpuGeneration::D);
    auto an = analyzeLifespan(rep, Policy::NoPG, 0.85);
    EXPECT_GE(an.optimalYears, 1);
    EXPECT_LE(an.optimalYears, 10);
}

TEST(Lifespan, GatingExtendsOptimalLifespan)
{
    // Fig. 25: ReGate shifts the optimum to longer lifespans (or at
    // least never shortens it) because the operational term shrinks.
    for (auto w : {Workload::Train405B, Workload::DlrmL,
                   Workload::DiTXL}) {
        auto rep = sim::simulateWorkload(w, NpuGeneration::D);
        auto nopg = analyzeLifespan(rep, Policy::NoPG, 0.85);
        auto full = analyzeLifespan(rep, Policy::Full, 0.85);
        EXPECT_GE(full.optimalYears, nopg.optimalYears)
            << models::workloadName(w);
    }
}

TEST(Lifespan, TotalIsSumOfParts)
{
    auto rep = sim::simulateWorkload(Workload::DlrmS,
                                     NpuGeneration::D);
    auto an = analyzeLifespan(rep, Policy::Full, 0.9, 5);
    for (const auto &pt : an.points) {
        EXPECT_NEAR(pt.totalPerUnit(),
                    pt.embodiedPerUnit + pt.operationalPerUnit,
                    1e-18);
    }
}

TEST(Lifespan, Validation)
{
    auto rep = sim::simulateWorkload(Workload::DlrmS,
                                     NpuGeneration::D);
    EXPECT_THROW(analyzeLifespan(rep, Policy::NoPG, 1.5),
                 ConfigError);
    EXPECT_THROW(analyzeLifespan(rep, Policy::NoPG, 0.9, 0),
                 ConfigError);
}

}  // namespace
}  // namespace carbon
}  // namespace regate
