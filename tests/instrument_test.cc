/**
 * @file
 * Tests for the idleness analysis + setpm instrumentation passes
 * (§4.3): intervals below BET are left alone, long intervals get
 * off/on pairs, and the instrumented program runs without exposed
 * stalls while gating the VUs.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "compiler/compiler.h"

namespace regate {
namespace compiler {
namespace {

isa::VliwCoreConfig
coreCfg()
{
    isa::VliwCoreConfig cfg;
    cfg.numSa = 2;
    cfg.numVu = 2;
    return cfg;
}

TEST(Idleness, FindsVuGaps)
{
    KernelSpec spec;
    spec.tiles = 4;
    spec.popCycles = 50;
    spec.vuOpsPerTile = 2;
    auto prog = buildMatmulKernel(spec);
    auto analysis = analyzeVuIdleness(prog, coreCfg());

    // 3 inner gaps per VU of ~48 cycles.
    int per_vu = 0;
    for (const auto &idle : analysis.vuIdle) {
        if (idle.unit == 0) {
            ++per_vu;
            EXPECT_NEAR(static_cast<double>(idle.interval.length()),
                        48.0, 2.0);
        }
    }
    EXPECT_EQ(per_vu, 3);
    EXPECT_EQ(analysis.bundleDispatch.size(), prog.size());
}

TEST(Instrument, ShortGapsNotGated)
{
    // Fig. 15-sized gaps (14 cycles) are below the 32-cycle VU BET:
    // no setpm inserted.
    KernelSpec spec;
    spec.tiles = 4;
    spec.popCycles = 16;
    spec.vuOpsPerTile = 2;
    arch::GatingParams params;
    auto result = compileKernel(spec, coreCfg(), params);
    EXPECT_EQ(result.instrumentation.gatedIntervals, 0u);
    EXPECT_EQ(result.program.setpmCount(), 0u);
}

TEST(Instrument, LongGapsGetSetpmPairs)
{
    KernelSpec spec;
    spec.tiles = 4;
    spec.popCycles = 100;  // 98-cycle gaps > BET.
    spec.vuOpsPerTile = 2;
    arch::GatingParams params;
    auto result = compileKernel(spec, coreCfg(), params);

    // Both VUs gate in all 3 inner gaps, sharing bundles via bitmaps.
    EXPECT_EQ(result.instrumentation.gatedIntervals, 6u);
    EXPECT_GT(result.instrumentation.gatedCycles, 0u);
    EXPECT_GT(result.program.setpmCount(), 0u);

    // Off-setpm rides the last VU bundle of each tile with a
    // two-unit bitmap.
    bool merged = false;
    for (const auto &b : result.program.bundles()) {
        if (b.misc.has_value() &&
            b.misc->mode == core::PowerMode::Off) {
            EXPECT_EQ(b.misc->bitmap, 0b11);
            merged = true;
        }
    }
    EXPECT_TRUE(merged);
}

TEST(Instrument, InstrumentedKernelGatesWithoutStalls)
{
    KernelSpec spec;
    spec.tiles = 6;
    spec.popCycles = 100;
    spec.vuOpsPerTile = 2;
    arch::GatingParams params;
    auto result = compileKernel(spec, coreCfg(), params);

    // Baseline timing.
    isa::VliwCore base(coreCfg());
    base.run(buildMatmulKernel(spec));

    // Instrumented run: same total cycles (software pre-wake hides
    // the delays), VUs spend most of the kernel power-gated.
    isa::VliwCore gated(coreCfg());
    gated.run(result.program);
    EXPECT_EQ(gated.totalCycles(), base.totalCycles());
    EXPECT_EQ(gated.wakeStallCycles(), 0u);
    EXPECT_GT(gated.vuTrace(0).gatedCycles(),
              gated.totalCycles() / 2);
}

TEST(Instrument, RespectsBetScaling)
{
    KernelSpec spec;
    spec.tiles = 4;
    spec.popCycles = 100;
    spec.vuOpsPerTile = 2;
    arch::GatingParams scaled;
    scaled.setDelayScale(4.0);  // VU BET: 32 -> 128 > the 98 gaps.
    auto result = compileKernel(spec, coreCfg(), scaled);
    EXPECT_EQ(result.instrumentation.gatedIntervals, 0u);
}

TEST(Instrument, AnalysisProgramMismatchRejected)
{
    KernelSpec a, b;
    a.tiles = 2;
    b.tiles = 3;
    auto prog_a = buildMatmulKernel(a);
    auto prog_b = buildMatmulKernel(b);
    auto analysis_b = analyzeVuIdleness(prog_b, coreCfg());
    arch::GatingParams params;
    EXPECT_THROW(instrumentVuGating(prog_a, analysis_b, params),
                 LogicError);
}

}  // namespace
}  // namespace compiler
}  // namespace regate
