/**
 * @file
 * Tests for the diffusion workload generators (DiT-XL, GLIGEN).
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "models/diffusion.h"

namespace regate {
namespace models {
namespace {

using graph::OpKind;

TEST(Diffusion, DitHeadSizeIs72)
{
    // §3: "DiT-XL has an attention head size of 72, which is smaller
    // than the SA width (128)" -- the Fig. 5 spatial-underutilization
    // driver.
    auto g = ditInference(128, {1, 1, 1});
    bool found = false;
    for (const auto &op : g.blocks[0].ops) {
        if (op.name == "attn.scores") {
            EXPECT_EQ(op.k, 72);
            found = true;
        }
        if (op.name == "attn.value")
            EXPECT_EQ(op.n, 72);
    }
    EXPECT_TRUE(found);
}

TEST(Diffusion, DitRepeatsBlocksTimesSteps)
{
    auto g = ditInference(128, {1, 1, 1});
    EXPECT_EQ(g.blocks[0].repeat,
              28u * static_cast<unsigned>(kDiffusionSteps));
}

TEST(Diffusion, GligenShrinksHeadSizeWithDepth)
{
    auto g = gligenInference(4, {1, 1, 1});
    // First level: head size 40; deeper levels grow to 160 while the
    // spatial resolution shrinks.
    std::vector<std::int64_t> head_sizes;
    for (const auto &b : g.blocks) {
        for (const auto &op : b.ops) {
            if (op.name.find(".self.scores") != std::string::npos)
                head_sizes.push_back(op.k);
        }
    }
    ASSERT_EQ(head_sizes.size(), 4u);
    EXPECT_EQ(head_sizes[0], 40);
    EXPECT_EQ(head_sizes[1], 80);
    EXPECT_EQ(head_sizes[2], 160);
    // The shallow (large-image) levels dominate the attention FLOPs
    // and sit well below the 128-wide SA -> spatial underutilization
    // (Fig. 5 GLIGEN at ~45%).
    EXPECT_LT(head_sizes[0], 128);
    EXPECT_LT(head_sizes[1], 128);
}

TEST(Diffusion, GligenHasConvsAndGatedAttention)
{
    auto g = gligenInference(4, {1, 1, 1});
    bool has_conv = false, has_gated = false;
    for (const auto &b : g.blocks) {
        for (const auto &op : b.ops) {
            has_conv |= op.name.find("conv3x3") != std::string::npos;
            has_gated |= op.name.find(".gated.") != std::string::npos;
        }
    }
    EXPECT_TRUE(has_conv);
    EXPECT_TRUE(has_gated);
}

TEST(Diffusion, ComputeBound)
{
    for (auto m : {DiffusionModel::DiTXL, DiffusionModel::GLIGEN}) {
        auto g = diffusionInference(m, 64, {1, 1, 1});
        EXPECT_GT(g.totalFlops() / g.totalHbmBytes(), 50.0)
            << diffusionModelName(m);
    }
}

TEST(Diffusion, DataParallelOnly)
{
    EXPECT_THROW(ditInference(64, {1, 2, 1}), ConfigError);
    EXPECT_THROW(gligenInference(64, {1, 1, 2}), ConfigError);
}

TEST(Diffusion, Names)
{
    EXPECT_EQ(diffusionModelName(DiffusionModel::DiTXL), "DiT-XL");
    EXPECT_EQ(diffusionModelName(DiffusionModel::GLIGEN), "GLIGEN");
}

}  // namespace
}  // namespace models
}  // namespace regate
