#!/usr/bin/env python3
"""End-to-end check of the sweep orchestrator (registered as a ctest).

Exercises regate_orch's failure machinery against real worker
binaries — the scenarios the ISSUE acceptance criteria pin:

1. fig02 (the SLO-search path) with 4 workers, one injected worker
   kill (SIGKILL on a live worker) AND one injected straggler that
   stalls past the per-shard timeout: both must be retried on a
   different slot, and the orchestrated `--render` output must be
   byte-identical to an unsharded run — as must the merged document
   vs the binary's own `--shard 0/1` document.

2. fig21 (the plain run path): the orchestrator itself is SIGKILLed
   mid-run (a deliberately stalled shard holds one slot while the
   other slot lands checkpoints), then `--resume` must reuse every
   validated shard file on disk, re-run only the missing shards, and
   still render byte-identically.
"""

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


def run(cmd, **kwargs):
    proc = subprocess.run(cmd, capture_output=True, **kwargs)
    if proc.returncode != 0:
        sys.exit(f"command failed ({proc.returncode}): "
                 f"{' '.join(map(str, cmd))}\n"
                 f"{proc.stderr.decode(errors='replace')}")
    return proc


def require(cond, message):
    if not cond:
        sys.exit(f"FAIL: {message}")


def check_injected_failures(orch, binary, tmp):
    """Scenario 1: worker kill + straggler timeout, byte-identical."""
    reference = run([binary]).stdout
    single = tmp / "fig02_single.json"
    run([binary, "--shard", "0/1", "--out", str(single)])

    rundir = tmp / "fig02_run"
    proc = run([orch, "--bin", str(binary), "--dir", str(rundir),
                "--workers", "4", "--granularity", "2",
                "--timeout-s", "30", "--max-attempts", "3",
                "--inject-kill-slot", "1",
                "--inject-stall-shard", "2",
                "--stall-seconds", "120",
                "--render"])
    events = proc.stderr.decode(errors="replace")

    require(proc.stdout == reference,
            "fig02: orchestrated render differs from unsharded run")
    require((rundir / "merged.json").read_bytes()
            == single.read_bytes(),
            "fig02: merged document differs from --shard 0/1")
    require("injected kill" in events and "signal 9" in events,
            f"fig02: no injected worker kill in events:\n{events}")
    require("timeout after" in events,
            f"fig02: no straggler timeout in events:\n{events}")
    require(events.count("retrying on another slot") >= 2,
            f"fig02: kill+timeout were not both retried:\n{events}")
    print("orch fig02: worker kill + straggler timeout retried; "
          "render and merged document byte-identical")


def check_resume(orch, binary, tmp):
    """Scenario 2: orchestrator killed mid-run, then resumed."""
    reference = run([binary]).stdout
    rundir = tmp / "fig21_run"
    shards = 4  # workers * granularity below

    # Shard 0's worker stalls for minutes, pinning slot 0, while
    # slot 1 lands the other shards as checkpoints. The orchestrator
    # runs in its own session so SIGKILLing its process group also
    # reaps the deliberately stalled worker it orphans.
    with open(tmp / "first_run.log", "wb") as log:
        orch_proc = subprocess.Popen(
            [orch, "--bin", str(binary), "--dir", str(rundir),
             "--workers", "2", "--granularity", "2",
             "--timeout-s", "600",
             "--inject-stall-shard", "0",
             "--stall-seconds", "120"],
            stdout=log, stderr=log, start_new_session=True)
        deadline = time.time() + 120
        while time.time() < deadline:
            landed = [i for i in range(shards)
                      if (rundir / f"shard_{i}.json").exists()]
            if len(landed) >= 2:
                break
            if orch_proc.poll() is not None:
                sys.exit("fig21: orchestrator exited before any "
                         "checkpoint landed")
            time.sleep(0.05)
        else:
            sys.exit("fig21: no checkpoints landed within 120s")
        os.killpg(orch_proc.pid, signal.SIGKILL)
        orch_proc.wait()

    landed = sorted(i for i in range(shards)
                    if (rundir / f"shard_{i}.json").exists())
    require(0 < len(landed) < shards,
            f"fig21: want a partial run to resume, have shards "
            f"{landed} of {shards}")

    proc = run([orch, "--bin", str(binary), "--dir", str(rundir),
                "--resume", "--workers", "2", "--timeout-s", "120"])
    events = proc.stderr.decode(errors="replace")

    reused = events.count("reused checkpoint")
    spawned = events.count(": spawn ")
    require(reused == len(landed),
            f"fig21 resume: reused {reused} checkpoints, expected "
            f"{len(landed)}:\n{events}")
    require(spawned == shards - len(landed),
            f"fig21 resume: spawned {spawned} workers, expected "
            f"only the {shards - len(landed)} missing shard(s):\n"
            f"{events}")

    rendered = run([binary, "--from",
                    str(rundir / "merged.json")]).stdout
    require(rendered == reference,
            "fig21: resumed render differs from unsharded run")
    print(f"orch fig21: resume reused {reused} checkpoint(s), "
          f"re-ran only {spawned} missing shard(s); render "
          "byte-identical")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--orch", required=True,
                    help="path to the regate_orch binary")
    ap.add_argument("--bin-dir", required=True,
                    help="directory holding the figure binaries")
    args = ap.parse_args()

    bin_dir = Path(args.bin_dir)
    fig02 = bin_dir / "fig02_energy_efficiency"
    fig21 = bin_dir / "fig21_sens_leakage"
    for binary in (Path(args.orch), fig02, fig21):
        if not binary.exists():
            sys.exit(f"missing binary {binary}")

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        check_injected_failures(args.orch, fig02, tmp)
        check_resume(args.orch, fig21, tmp)
    return 0


if __name__ == "__main__":
    sys.exit(main())
