#!/usr/bin/env python3
"""End-to-end check of the sweep orchestrator (registered as a ctest).

Exercises regate_orch's failure machinery against real worker
binaries and real regate_agent processes — the scenarios the ISSUE
acceptance criteria pin:

1. fig02 (the SLO-search path) with 4 local workers, one injected
   worker kill (SIGKILL on a live worker) AND one injected stall
   that goes heartbeat-silent past --stall-timeout-s: both must be
   retried on a different slot, and the orchestrated `--render`
   output must be byte-identical to an unsharded run — as must the
   merged document vs the binary's own `--shard 0/1` document.
   Each retry must also dump the always-on flight recorder: a
   `merged.json.postmortem.json` that passes
   `trace_check.py --postmortem` and names the doomed attempts'
   spans, without perturbing the byte-identical outputs.

2. fig21 straggler-vs-stall: a shard whose cases are slowed (but
   which keeps emitting per-case heartbeats) runs far past the
   stall timeout and must NOT be killed — the stall timeout
   measures heartbeat silence, not wall clock.

3. fig21 resume: the orchestrator itself is SIGKILLed mid-run (a
   deliberately stalled shard holds one slot while the other slot
   lands checkpoints), then `--resume` must reuse every validated
   shard file on disk, re-run only the missing shards, and still
   render byte-identically.

4. Probe rejection: binaries that do not speak the shard protocol
   (fig15) are rejected by regate_orch and regate_agent with a
   one-line usage error (exit 2) before any worker is spawned.

5. Loopback fleet (needs --agent): fig02 through 2 local slots plus
   two single-slot regate_agent processes; one agent is SIGKILLed
   mid-run (on its first assignment) and one shard stalls past the
   heartbeat timeout. The run must complete via retry/reassignment
   with render and merged document byte-identical to an unsharded
   run.

6. Elastic authenticated fleet (needs --agent): fig02 through 2
   local slots plus two single-slot secret-bearing agents. One agent
   is SIGKILLed on its first assignment and restarted on the same
   port — the orchestrator's reconnect backoff must revive its slot.
   A third agent dials the orchestrator's --join-port mid-run and is
   admitted [authenticated]; a wrong-secret joiner is rejected with
   a named auth error while the sweep completes. The injected-slow
   last shard is speculatively stolen (--max-speculative). Render
   and merged document must stay byte-identical to an unsharded run.

7. Spec fleet (needs --agent): the MoE example spec — a scenario no
   Workload enum value covers — through 2 local slots plus two
   spec-bearing agents, byte-identical to the binary's own --spec
   run, with the spec digest stamped into the merged document. An
   agent whose spec file differs (same case count, different
   digest) is rejected by the hello cross-check with a named error
   before any shard is assigned.

8. Telemetry fleet (needs --agent): fig02 through 2 local slots
   plus two agents, with --trace-out and --metrics-out. The trace
   must validate under tools/trace_check.py (well-formed, nested
   spans) and carry the orchestrate/shard timeline; the metrics
   snapshot must hold exactly one fleet.case_duration_us
   observation per grid case; render and merged document must stay
   byte-identical to a telemetry-off unsharded run — observing the
   sweep must not change its output.

9. Live status: a sweep started with `--status-port 0` announces
   its bound port and answers `status` frames mid-run with the
   canonical digest-sealed JSON snapshot (queried twice through
   tools/regate_top.py — raw and rendered — proving the listener
   re-accepts, one request per connection), while render output
   stays byte-identical to an unsharded run.
"""

import argparse
import json
import os
import re
import signal
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path


TOOLS = Path(__file__).resolve().parent.parent / "tools"


def run(cmd, **kwargs):
    proc = subprocess.run(cmd, capture_output=True, **kwargs)
    if proc.returncode != 0:
        sys.exit(f"command failed ({proc.returncode}): "
                 f"{' '.join(map(str, cmd))}\n"
                 f"{proc.stderr.decode(errors='replace')}")
    return proc


def require(cond, message):
    if not cond:
        sys.exit(f"FAIL: {message}")


def check_injected_failures(orch, binary, tmp):
    """Scenario 1: worker kill + heartbeat stall, byte-identical."""
    reference = run([binary]).stdout
    single = tmp / "fig02_single.json"
    run([binary, "--shard", "0/1", "--out", str(single)])

    rundir = tmp / "fig02_run"
    proc = run([orch, "--bin", str(binary), "--dir", str(rundir),
                "--workers", "4", "--granularity", "2",
                "--stall-timeout-s", "15", "--max-attempts", "3",
                "--inject-kill-slot", "1",
                "--inject-stall-shard", "2",
                "--stall-seconds", "90",
                "--render"])
    events = proc.stderr.decode(errors="replace")

    require(proc.stdout == reference,
            "fig02: orchestrated render differs from unsharded run")
    require((rundir / "merged.json").read_bytes()
            == single.read_bytes(),
            "fig02: merged document differs from --shard 0/1")
    require("injected kill" in events and "signal 9" in events,
            f"fig02: no injected worker kill in events:\n{events}")
    require("stalled: no heartbeat" in events,
            f"fig02: no heartbeat-stall kill in events:\n{events}")
    require(events.count("retrying on another slot") >= 2,
            f"fig02: kill+stall were not both retried:\n{events}")

    # Every retry dumps the always-on flight recorder beside the
    # merged document. The dump must be postmortem-clean and carry
    # the doomed attempts' story — and its existence must not have
    # perturbed the byte-identical outputs asserted above.
    pm = rundir / "merged.json.postmortem.json"
    require(pm.exists(),
            f"fig02: retries left no postmortem dump:\n{events}")
    require("postmortem: wrote" in events,
            f"fig02: no postmortem event line:\n{events}")
    run([sys.executable, str(TOOLS / "trace_check.py"),
         "--postmortem", str(pm)])
    pm_names = {ev["name"] for ev in json.loads(pm.read_text())}
    require("shard.retry" in pm_names,
            f"fig02: postmortem lacks shard.retry instants: "
            f"{sorted(pm_names)}")
    require("shard.assign" in pm_names,
            f"fig02: postmortem lacks shard.assign instants: "
            f"{sorted(pm_names)}")
    require(any(n.startswith("shard ") for n in pm_names),
            f"fig02: postmortem names no shard span: "
            f"{sorted(pm_names)}")
    print("orch fig02: worker kill + heartbeat stall retried; "
          "postmortem dump validates; render and merged document "
          "byte-identical")


def check_straggler_survives(orch, binary, tmp):
    """Scenario 2: slow-but-heartbeating shard outlives the stall
    timeout."""
    reference = run([binary]).stdout
    rundir = tmp / "fig21_straggler_run"
    proc = run([orch, "--bin", str(binary), "--dir", str(rundir),
                "--workers", "2", "--granularity", "1",
                "--stall-timeout-s", "5",
                "--inject-slow-shard", "0",
                "--slow-case-seconds", "1",
                "--render"])
    events = proc.stderr.decode(errors="replace")

    require(proc.stdout == reference,
            "fig21 straggler: render differs from unsharded run")
    require("stalled" not in events,
            f"fig21 straggler: alive shard was killed as "
            f"stalled:\n{events}")
    done = re.search(r"shard 0 attempt 1: done \((\d+\.\d)s\)",
                     events)
    require(done is not None,
            f"fig21 straggler: no done event for shard 0:\n{events}")
    took = float(done.group(1))
    require(took > 5.0,
            f"fig21 straggler: shard 0 finished in {took}s, which "
            f"does not outlive the 5s stall timeout — the scenario "
            f"proved nothing")
    print(f"orch fig21: straggling-but-alive shard ran {took}s past "
          "a 5s stall timeout (heartbeats kept it alive); render "
          "byte-identical")


def check_resume(orch, binary, tmp):
    """Scenario 3: orchestrator killed mid-run, then resumed."""
    reference = run([binary]).stdout
    rundir = tmp / "fig21_run"
    shards = 4  # workers * granularity below

    # Shard 0's worker stalls for minutes, pinning slot 0, while
    # slot 1 lands the other shards as checkpoints. The orchestrator
    # runs in its own session so SIGKILLing its process group also
    # reaps the deliberately stalled worker it orphans.
    with open(tmp / "first_run.log", "wb") as log:
        orch_proc = subprocess.Popen(
            [orch, "--bin", str(binary), "--dir", str(rundir),
             "--workers", "2", "--granularity", "2",
             "--stall-timeout-s", "600",
             "--inject-stall-shard", "0",
             "--stall-seconds", "120"],
            stdout=log, stderr=log, start_new_session=True)
        deadline = time.time() + 120
        while time.time() < deadline:
            landed = [i for i in range(shards)
                      if (rundir / f"shard_{i}.json").exists()]
            if len(landed) >= 2:
                break
            if orch_proc.poll() is not None:
                sys.exit("fig21: orchestrator exited before any "
                         "checkpoint landed")
            time.sleep(0.05)
        else:
            sys.exit("fig21: no checkpoints landed within 120s")
        os.killpg(orch_proc.pid, signal.SIGKILL)
        orch_proc.wait()

    landed = sorted(i for i in range(shards)
                    if (rundir / f"shard_{i}.json").exists())
    require(0 < len(landed) < shards,
            f"fig21: want a partial run to resume, have shards "
            f"{landed} of {shards}")

    proc = run([orch, "--bin", str(binary), "--dir", str(rundir),
                "--resume", "--workers", "2",
                "--stall-timeout-s", "120"])
    events = proc.stderr.decode(errors="replace")

    reused = events.count("reused checkpoint")
    spawned = events.count(": spawn ")
    require(reused == len(landed),
            f"fig21 resume: reused {reused} checkpoints, expected "
            f"{len(landed)}:\n{events}")
    require(spawned == shards - len(landed),
            f"fig21 resume: spawned {spawned} workers, expected "
            f"only the {shards - len(landed)} missing shard(s):\n"
            f"{events}")

    rendered = run([binary, "--from",
                    str(rundir / "merged.json")]).stdout
    require(rendered == reference,
            "fig21: resumed render differs from unsharded run")
    print(f"orch fig21: resume reused {reused} checkpoint(s), "
          f"re-ran only {spawned} missing shard(s); render "
          "byte-identical")


def check_probe_rejects(orch, agent, no_grid_binary, tmp):
    """Scenario 4: non-protocol binaries fail the --cases probe."""
    proc = subprocess.run(
        [orch, "--bin", str(no_grid_binary),
         "--dir", str(tmp / "probe_run")],
        capture_output=True)
    err = proc.stderr.decode(errors="replace")
    require(proc.returncode == 2,
            f"regate_orch accepted {no_grid_binary.name} "
            f"(exit {proc.returncode}):\n{err}")
    require("does not speak the shard worker protocol" in err,
            f"regate_orch probe rejection lacks the usage "
            f"message:\n{err}")
    require("spawn" not in err,
            f"regate_orch spawned workers for a non-protocol "
            f"binary:\n{err}")
    print("orch probe: regate_orch rejects "
          f"{no_grid_binary.name} with a usage error")

    if agent is None:
        return
    proc = subprocess.run(
        [agent, "--bin", str(no_grid_binary), "--port", "0",
         "--dir", str(tmp / "probe_agent")],
        capture_output=True)
    err = proc.stderr.decode(errors="replace")
    require(proc.returncode == 2,
            f"regate_agent accepted {no_grid_binary.name} "
            f"(exit {proc.returncode}):\n{err}")
    require("does not speak the shard worker protocol" in err,
            f"regate_agent probe rejection lacks the usage "
            f"message:\n{err}")
    print("orch probe: regate_agent rejects "
          f"{no_grid_binary.name} with a usage error")


class Agent:
    """One single-slot regate_agent process: listening on a loopback
    port by default, or dialing an orchestrator's join port when
    ``join`` is given. A fixed ``port`` lets a restarted agent rebind
    where a killed one listened, so the driver's re-dial finds it."""

    def __init__(self, agent_bin, target, workdir, log_path,
                 port=0, secret=None, join=None, spec=None):
        self.log_path = log_path
        self.log = open(log_path, "wb")
        cmd = [agent_bin, "--bin", str(target), "--slots", "1",
               "--dir", str(workdir), "--max-sessions", "1"]
        cmd += ["--join", join] if join else ["--port", str(port)]
        if secret is not None:
            cmd += ["--secret-file", str(secret)]
        if spec is not None:
            cmd += ["--spec", str(spec)]
        self.proc = subprocess.Popen(cmd, stdout=self.log,
                                     stderr=self.log)
        self.port = None if join else self._await_port()

    def _await_port(self):
        deadline = time.time() + 30
        while time.time() < deadline:
            m = re.search(rb"listening on port (\d+)",
                          self.log_path.read_bytes())
            if m:
                return int(m.group(1))
            if self.proc.poll() is not None:
                sys.exit(f"agent died at startup:\n"
                         f"{self.log_path.read_bytes().decode()}")
            time.sleep(0.05)
        sys.exit("agent never reported its port")

    def events(self):
        return self.log_path.read_bytes().decode(errors="replace")

    def kill_on_first_assign(self):
        """SIGKILL this agent the moment it spawns its first worker
        — deterministically mid-run from the driver's view."""
        def watch():
            deadline = time.time() + 120
            while time.time() < deadline:
                if b": assign " in self.log_path.read_bytes():
                    self.proc.kill()
                    return
                if self.proc.poll() is not None:
                    return
                time.sleep(0.02)
        thread = threading.Thread(target=watch, daemon=True)
        thread.start()
        return thread

    def reap(self):
        try:
            self.proc.kill()
        except ProcessLookupError:
            pass
        self.proc.wait()
        self.log.close()


def check_fleet(orch, agent_bin, binary, tmp):
    """Scenario 5: mixed loopback fleet, one agent SIGKILLed mid-run
    plus one heartbeat-stalled shard; byte-identical output."""
    reference = run([binary]).stdout
    single = tmp / "fleet_single.json"
    run([binary, "--shard", "0/1", "--out", str(single)])

    agents = [Agent(agent_bin, binary, tmp / f"agent{i}_work",
                    tmp / f"agent{i}.log") for i in (0, 1)]
    watcher = agents[1].kill_on_first_assign()
    try:
        rundir = tmp / "fleet_run"
        # 2 local + 2 agent slots, granularity 2 -> 8 shards on
        # fig02's 68 cases. The stalled shard is the last one, so it
        # is assigned after the doomed agent is already gone and the
        # two injections cannot land on the same attempt.
        proc = run([orch, "--bin", str(binary),
                    "--dir", str(rundir),
                    "--workers", "2", "--granularity", "2",
                    "--host", f"127.0.0.1:{agents[0].port}:1",
                    "--host", f"127.0.0.1:{agents[1].port}",
                    "--stall-timeout-s", "15",
                    "--inject-stall-shard", "7",
                    "--stall-seconds", "90",
                    "--render"])
        events = proc.stderr.decode(errors="replace")
    finally:
        watcher.join(timeout=10)
        for agent in agents:
            agent.reap()

    require(proc.stdout == reference,
            "fleet: orchestrated render differs from unsharded run")
    require((tmp / "fleet_run" / "merged.json").read_bytes()
            == single.read_bytes(),
            "fleet: merged document differs from --shard 0/1")
    require("agent 127.0.0.1:" in events,
            f"fleet: no agents joined the fleet:\n{events}")
    require("connection lost" in events and "retired" in events,
            f"fleet: the killed agent's loss was not "
            f"detected:\n{events}")
    require("stalled: no heartbeat" in events,
            f"fleet: no heartbeat-stall kill in events:\n{events}")
    require(events.count("retrying on another slot") >= 2,
            f"fleet: agent loss + stall were not both "
            f"retried:\n{events}")
    # The surviving agent must actually have done work.
    require(": done (" in agents[0].events() or
            ": artifact sent" in agents[0].events(),
            f"fleet: surviving agent did no work:\n"
            f"{agents[0].events()}")
    print("orch fleet: 2 local + 2 agent slots; agent SIGKILL and "
          "heartbeat stall both reassigned; render and merged "
          "document byte-identical")


def check_elastic(orch, agent_bin, binary, tmp):
    """Scenario 6: reconnect, mid-run join, work-stealing, and HMAC
    auth in one sweep; byte-identical output."""
    reference = run([binary]).stdout
    single = tmp / "elastic_single.json"
    run([binary, "--shard", "0/1", "--out", str(single)])

    secret = tmp / "fleet.secret"
    secret.write_text("elastic-e2e-shared-secret\n")
    wrong = tmp / "wrong.secret"
    wrong.write_text("not-the-fleet-secret\n")

    agents = [Agent(agent_bin, binary, tmp / f"el_agent{i}_work",
                    tmp / f"el_agent{i}.log", secret=secret)
              for i in (0, 1)]
    extras = []  # restarted agent + joiners, reaped in finally

    # SIGKILL agent 0 the moment it spawns its first worker, then
    # immediately restart a fresh agent on the SAME port: the
    # orchestrator's reconnect backoff must find it and revive the
    # retired slot instead of writing the host off.
    def kill_and_restart():
        deadline = time.time() + 120
        while time.time() < deadline:
            if b": assign " in agents[0].log_path.read_bytes():
                agents[0].proc.kill()
                agents[0].proc.wait()
                extras.append(Agent(
                    agent_bin, binary, tmp / "el_agent0b_work",
                    tmp / "el_agent0b.log", port=agents[0].port,
                    secret=secret))
                return
            if agents[0].proc.poll() is not None:
                return
            time.sleep(0.02)
    watcher = threading.Thread(target=kill_and_restart, daemon=True)
    watcher.start()

    rundir = tmp / "elastic_run"
    orch_log = tmp / "elastic_orch.log"
    out_path = tmp / "elastic_render.out"
    impostor = None
    try:
        # 2 local + 2 agent slots, granularity 2 -> 8 shards on
        # fig02's 68 cases. The slow shard is the last one: it is
        # still grinding (with live heartbeats, so no stall kill)
        # long after the queue drains, which is exactly when
        # --max-speculative steals it onto an idle slot.
        with open(orch_log, "wb") as log, \
             open(out_path, "wb") as out:
            orch_proc = subprocess.Popen(
                [orch, "--bin", str(binary), "--dir", str(rundir),
                 "--workers", "2", "--granularity", "2",
                 "--host", f"127.0.0.1:{agents[0].port}:1",
                 "--host", f"127.0.0.1:{agents[1].port}",
                 "--join-port", "0",
                 "--secret-file", str(secret),
                 "--max-speculative", "1",
                 "--stall-timeout-s", "30",
                 "--inject-slow-shard", "7",
                 "--slow-case-seconds", "2",
                 "--render"],
                stdout=out, stderr=log)

            deadline = time.time() + 30
            join_port = None
            while time.time() < deadline:
                m = re.search(rb"join: listening on port (\d+)",
                              orch_log.read_bytes())
                if m:
                    join_port = int(m.group(1))
                    break
                if orch_proc.poll() is not None:
                    sys.exit(
                        "elastic: orchestrator exited before "
                        "announcing its join port:\n" +
                        orch_log.read_bytes().decode(
                            errors="replace"))
                time.sleep(0.05)
            require(join_port is not None,
                    "elastic: no join port announced within 30s")

            target = f"127.0.0.1:{join_port}"
            extras.append(Agent(agent_bin, binary,
                                tmp / "el_joiner_work",
                                tmp / "el_joiner.log",
                                join=target, secret=secret))
            impostor = Agent(agent_bin, binary,
                             tmp / "el_impostor_work",
                             tmp / "el_impostor.log",
                             join=target, secret=wrong)
            extras.append(impostor)

            rc = orch_proc.wait(timeout=300)
            imp_rc = impostor.proc.wait(timeout=60)
    finally:
        watcher.join(timeout=10)
        for agent in agents + extras:
            agent.reap()

    events = orch_log.read_bytes().decode(errors="replace")
    require(rc == 0,
            f"elastic: orchestrator failed (exit {rc}):\n{events}")
    require(out_path.read_bytes() == reference,
            "elastic: orchestrated render differs from unsharded "
            "run")
    require((rundir / "merged.json").read_bytes()
            == single.read_bytes(),
            "elastic: merged document differs from --shard 0/1")
    require("[authenticated]" in events,
            f"elastic: no authenticated hello in events:\n{events}")
    require("revived (agent reconnected)" in events,
            f"elastic: restarted agent was never revived by the "
            f"reconnect backoff:\n{events}")
    require(re.search(r"join: agent .* adds 1 slot\(s\) "
                      r"\[authenticated\]", events),
            f"elastic: mid-run joiner was not admitted:\n{events}")
    require("join rejected" in events and "wrong secret" in events,
            f"elastic: wrong-secret joiner was not rejected with a "
            f"named auth error:\n{events}")
    require(imp_rc == 1,
            f"elastic: wrong-secret joiner exited {imp_rc}, "
            f"expected 1:\n{impostor.events()}")
    require(re.search(r"shard 7 attempt \d+: speculative spawn",
                      events),
            f"elastic: the slow last shard was never stolen:\n"
            f"{events}")
    require("lost the race" in events,
            f"elastic: no speculative race was settled:\n{events}")
    print("orch elastic: killed agent revived on reconnect, joiner "
          "admitted mid-run [authenticated], wrong-secret joiner "
          "rejected by name, slow last shard stolen; render and "
          "merged document byte-identical")


def check_spec_fleet(orch, agent_bin, binary, tmp):
    """Scenario 7: a registry-only scenario spec (MoE — no Workload
    enum value exists for it) swept through 2 local slots plus two
    spec-bearing agents, byte-identical to the binary's own --spec
    run; then an agent whose spec digest differs is rejected by name
    before any shard is assigned."""
    spec = (Path(__file__).resolve().parent.parent / "examples" /
            "specs" / "moe_mixtral.spec")
    require(spec.exists(), f"missing example spec {spec}")

    reference = run([binary, "--spec", str(spec)]).stdout
    single = tmp / "spec_single.json"
    run([binary, "--spec", str(spec), "--shard", "0/1",
         "--out", str(single)])

    agents = [Agent(agent_bin, binary, tmp / f"sp_agent{i}_work",
                    tmp / f"sp_agent{i}.log", spec=spec)
              for i in (0, 1)]
    try:
        rundir = tmp / "spec_run"
        proc = run([orch, "--bin", str(binary),
                    "--spec", str(spec), "--dir", str(rundir),
                    "--workers", "2", "--granularity", "1",
                    "--host", f"127.0.0.1:{agents[0].port}",
                    "--host", f"127.0.0.1:{agents[1].port}",
                    "--render"])
        events = proc.stderr.decode(errors="replace")
    finally:
        for agent in agents:
            agent.reap()

    require(proc.stdout == reference,
            "spec fleet: orchestrated render differs from the "
            "binary's own --spec run")
    merged = (tmp / "spec_run" / "merged.json").read_bytes()
    require(merged == single.read_bytes(),
            "spec fleet: merged document differs from --shard 0/1")
    require(b'"spec_digest":"' in merged,
            "spec fleet: merged document carries no spec digest")
    require(events.count("agent 127.0.0.1:") >= 2,
            f"spec fleet: both agents should join:\n{events}")
    worked = [a for a in agents
              if ": done (" in a.events()
              or ": artifact sent" in a.events()]
    require(worked,
            f"spec fleet: no agent did any work:\n"
            f"{agents[0].events()}\n{agents[1].events()}")
    print("orch spec: MoE scenario spec (no enum value) swept "
          "across 2 local + 2 agent slots; render and merged "
          "document byte-identical to the binary's own --spec run")

    # Rejection: an agent running a DIFFERENT spec with the same
    # case count (so only the digest distinguishes them) must be
    # turned away by the hello cross-check, by name, before any
    # shard is assigned.
    wrong_spec = tmp / "wrong.spec"
    wrong_spec.write_text(
        spec.read_text().replace("batch = 16", "batch = 32"))
    impostor = Agent(agent_bin, binary, tmp / "sp_wrong_work",
                     tmp / "sp_wrong.log", spec=wrong_spec)
    try:
        proc = subprocess.run(
            [orch, "--bin", str(binary), "--spec", str(spec),
             "--dir", str(tmp / "spec_reject_run"),
             "--workers", "0", "--reconnect-tries", "0",
             "--host", f"127.0.0.1:{impostor.port}"],
            capture_output=True)
    finally:
        impostor.reap()
    err = proc.stderr.decode(errors="replace")
    require(proc.returncode == 1,
            f"spec fleet: mismatched-spec agent accepted "
            f"(exit {proc.returncode}):\n{err}")
    require("spec digest mismatch" in err,
            f"spec fleet: rejection lacks the named digest "
            f"error:\n{err}")
    require(": assign " not in err,
            f"spec fleet: a shard was assigned to a mismatched "
            f"agent:\n{err}")
    print("orch spec: agent running a different spec file rejected "
          "with a named digest error before any assignment")


def check_telemetry(orch, agent_bin, binary, tmp):
    """Scenario 8: --trace-out/--metrics-out on a loopback fleet.
    The sweep must stay byte-identical to a telemetry-off run, the
    trace must pass tools/trace_check.py, and the snapshot's
    per-case duration histogram must count every grid case."""
    reference = run([binary]).stdout
    single = tmp / "tel_single.json"
    run([binary, "--shard", "0/1", "--out", str(single)])
    cases = int(run([binary, "--cases"]).stdout)

    trace = tmp / "tel_trace.json"
    metrics = tmp / "tel_metrics.json"
    agents = [Agent(agent_bin, binary, tmp / f"tel_agent{i}_work",
                    tmp / f"tel_agent{i}.log") for i in (0, 1)]
    try:
        rundir = tmp / "tel_run"
        proc = run([orch, "--bin", str(binary), "--dir", str(rundir),
                    "--workers", "2", "--granularity", "2",
                    "--host", f"127.0.0.1:{agents[0].port}",
                    "--host", f"127.0.0.1:{agents[1].port}",
                    "--trace-out", str(trace),
                    "--metrics-out", str(metrics),
                    "--render"])
        events = proc.stderr.decode(errors="replace")
    finally:
        for agent in agents:
            agent.reap()

    # Observing the sweep must not change what it produces.
    require(proc.stdout == reference,
            "telemetry: traced render differs from a telemetry-off "
            "unsharded run")
    require((rundir / "merged.json").read_bytes()
            == single.read_bytes(),
            "telemetry: merged document differs from --shard 0/1")
    require("trace: wrote" in events and "metrics: wrote" in events,
            f"telemetry: no trace/metrics write events:\n{events}")

    # The trace must be valid, nested trace-event JSON carrying the
    # orchestrator timeline (trace_check.py exits non-zero on any
    # malformed or mis-nested event).
    checker = (Path(__file__).resolve().parent.parent / "tools" /
               "trace_check.py")
    run([sys.executable, str(checker), str(trace)])
    names = {ev["name"] for ev in json.loads(trace.read_text())}
    require("orchestrate" in names,
            f"telemetry: trace lacks the orchestrate span: {names}")
    require(any(n.startswith("shard") for n in names),
            f"telemetry: trace lacks shard spans: {names}")

    # The fleet histogram must have seen every case exactly once —
    # local slots, agent slots, no double counting.
    snapshot = json.loads(metrics.read_text())
    require(snapshot.get("obs") == "regate-metrics",
            f"telemetry: snapshot lacks the obs header: {metrics}")
    hist = snapshot.get("histograms", {}).get("fleet.case_duration_us")
    require(hist is not None,
            f"telemetry: snapshot has no fleet.case_duration_us "
            f"histogram:\n{metrics.read_text()}")
    require(hist["count"] == cases,
            f"telemetry: fleet.case_duration_us counted "
            f"{hist['count']} cases, grid has {cases}")
    require(hist["sum"] > 0,
            "telemetry: per-case durations sum to zero")
    print(f"orch telemetry: traced fleet sweep validated "
          f"({len(names)} span names), {hist['count']}/{cases} "
          "cases in the duration histogram; render and merged "
          "document byte-identical to a telemetry-off run")


STATUS_KEYS = ["obs", "version", "bin", "cases", "merged_cases",
               "shards", "completed_shards", "attempts", "retries",
               "steal_spawned", "steal_wins", "steal_losses",
               "case_mean_us", "case_p50_us", "case_p95_us",
               "case_p99_us", "eta_s", "slots", "digest"]
SLOT_KEYS = ["name", "alive", "busy", "shard", "attempt",
             "speculative", "heartbeat_age_ms", "progress"]


def check_status(orch, binary, tmp):
    """Scenario 9: the --status-port endpoint queried mid-sweep."""
    reference = run([binary]).stdout
    cases = int(run([binary, "--cases"]).stdout)

    rundir = tmp / "status_run"
    orch_log = tmp / "status_orch.log"
    out_path = tmp / "status_render.out"
    top = TOOLS / "regate_top.py"
    with open(orch_log, "wb") as log, open(out_path, "wb") as out:
        # The slow last shard (live heartbeats, so never
        # stall-killed) keeps the sweep running long enough that
        # both queries below land strictly mid-run.
        orch_proc = subprocess.Popen(
            [orch, "--bin", str(binary), "--dir", str(rundir),
             "--workers", "2", "--granularity", "2",
             "--status-port", "0",
             "--stall-timeout-s", "60",
             "--inject-slow-shard", "3",
             "--slow-case-seconds", "1",
             "--render"],
            stdout=out, stderr=log)
        try:
            deadline = time.time() + 30
            port = None
            while time.time() < deadline:
                m = re.search(rb"status: listening on port (\d+)",
                              orch_log.read_bytes())
                if m:
                    port = int(m.group(1))
                    break
                if orch_proc.poll() is not None:
                    sys.exit("status: orchestrator exited before "
                             "announcing its status port:\n" +
                             orch_log.read_bytes().decode(
                                 errors="replace"))
                time.sleep(0.05)
            require(port is not None,
                    "status: no status port announced within 30s")

            # Two separate connections through the shipped client —
            # regate_top verifies the digest footer itself, so a
            # torn or non-canonical reply fails here. Two queries
            # prove the listener re-accepts (one request per
            # connection, not a one-shot).
            raw = run([sys.executable, str(top), "--port",
                       str(port), "--once", "--raw"]).stdout
            st = json.loads(raw)
            require(list(st.keys()) == STATUS_KEYS,
                    f"status: non-canonical key order: "
                    f"{list(st.keys())}")
            require(st["obs"] == "regate-status"
                    and st["version"] == 1,
                    f"status: bad header: {st['obs']!r} "
                    f"v{st['version']}")
            require(st["cases"] == cases,
                    f"status: snapshot says {st['cases']} cases, "
                    f"grid has {cases}")
            require(st["shards"] == 4 and len(st["slots"]) == 2,
                    f"status: want 4 shards over 2 slots, got "
                    f"{st['shards']}/{len(st['slots'])}")
            for slot in st["slots"]:
                require(list(slot.keys()) == SLOT_KEYS,
                        f"status: non-canonical slot keys: "
                        f"{list(slot.keys())}")
            require(st["merged_cases"] < cases,
                    "status: sweep already complete — the query "
                    "was not a mid-run snapshot")
            require(st["attempts"] >= 1, "status: no attempts yet")

            rendered = run([sys.executable, str(top), "--port",
                            str(port), "--once"]).stdout.decode()
            require("SLOT" in rendered and "ETA" in rendered,
                    f"status: regate_top render lacks the fleet "
                    f"table:\n{rendered}")

            rc = orch_proc.wait(timeout=300)
        finally:
            if orch_proc.poll() is None:
                orch_proc.kill()
                orch_proc.wait()

    events = orch_log.read_bytes().decode(errors="replace")
    require(rc == 0,
            f"status: orchestrator failed (exit {rc}):\n{events}")
    require(out_path.read_bytes() == reference,
            "status: observed render differs from unsharded run")
    print(f"orch status: mid-sweep snapshot at "
          f"{st['merged_cases']}/{cases} cases over two "
          "connections, canonical keys and digest verified; render "
          "byte-identical")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--orch", required=True,
                    help="path to the regate_orch binary")
    ap.add_argument("--agent",
                    help="path to the regate_agent binary")
    ap.add_argument("--bin-dir", required=True,
                    help="directory holding the figure binaries")
    ap.add_argument("--only",
                    choices=["fleet", "elastic", "spec",
                             "telemetry", "status"],
                    help="run just one scenario (CI fleet jobs)")
    args = ap.parse_args()

    bin_dir = Path(args.bin_dir)
    fig02 = bin_dir / "fig02_energy_efficiency"
    fig15 = bin_dir / "fig15_setpm_timeline"
    fig21 = bin_dir / "fig21_sens_leakage"
    needed = [Path(args.orch), fig02, fig21, fig15]
    if args.agent:
        needed.append(Path(args.agent))
    for binary in needed:
        if not binary.exists():
            sys.exit(f"missing binary {binary}")

    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        if args.only:
            if args.only == "status":
                check_status(args.orch, fig02, tmp)
                return 0
            if not args.agent:
                sys.exit(f"--only {args.only} needs --agent")
            scenario = {"fleet": check_fleet,
                        "elastic": check_elastic,
                        "spec": check_spec_fleet,
                        "telemetry": check_telemetry}[args.only]
            scenario(args.orch, args.agent, fig02, tmp)
            return 0
        check_injected_failures(args.orch, fig02, tmp)
        check_status(args.orch, fig02, tmp)
        check_straggler_survives(args.orch, fig21, tmp)
        check_resume(args.orch, fig21, tmp)
        check_probe_rejects(args.orch, args.agent, fig15, tmp)
        if args.agent:
            check_fleet(args.orch, args.agent, fig02, tmp)
            check_elastic(args.orch, args.agent, fig02, tmp)
            check_spec_fleet(args.orch, args.agent, fig02, tmp)
            check_telemetry(args.orch, args.agent, fig02, tmp)
    return 0


if __name__ == "__main__":
    sys.exit(main())
