/**
 * @file
 * Tests for the break-even-time arithmetic (§2.3, §4.3).
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "core/bet.h"

namespace regate {
namespace core {
namespace {

TEST(Bet, TransitionEnergyDefinition)
{
    // At exactly BET cycles of idleness, gating saves nothing:
    // savings(BET) == 0 by construction.
    double p = 2.0, tau = 1e-9, leak = 0.03;
    Cycles bet = 100, delay = 10;
    double e_tr = transitionEnergy(p, bet, delay, leak, tau);
    double saving = gatingSaving(bet - 2 * delay, p, leak, e_tr, tau);
    EXPECT_NEAR(saving, 0.0, 1e-15);
}

TEST(Bet, LongerIdleSavesMore)
{
    double p = 1.0, tau = 1e-9, leak = 0.03;
    Cycles bet = 32, delay = 2;
    double e_tr = transitionEnergy(p, bet, delay, leak, tau);
    double s100 = gatingSaving(100, p, leak, e_tr, tau);
    double s1000 = gatingSaving(1000, p, leak, e_tr, tau);
    EXPECT_GT(s1000, s100);
    EXPECT_GT(s100, 0.0);
}

TEST(Bet, ShortIdleLoses)
{
    double p = 1.0, tau = 1e-9, leak = 0.03;
    Cycles bet = 100, delay = 10;
    double e_tr = transitionEnergy(p, bet, delay, leak, tau);
    EXPECT_LT(gatingSaving(10, p, leak, e_tr, tau), 0.0);
}

TEST(Bet, TransitionEnergyEdgeCases)
{
    // BET shorter than the transition pair: nothing to amortize.
    EXPECT_DOUBLE_EQ(transitionEnergy(1.0, 10, 10, 0.0, 1e-9), 0.0);
    EXPECT_THROW(transitionEnergy(-1.0, 10, 1, 0.0, 1e-9),
                 ConfigError);
    EXPECT_THROW(transitionEnergy(1.0, 10, 1, 1.5, 1e-9), ConfigError);
}

TEST(Bet, SwPolicyRule)
{
    // §4.3: gate iff idle > BET and idle > 2x delay.
    EXPECT_TRUE(shouldGateSw(100, 32, 2));
    EXPECT_FALSE(shouldGateSw(32, 32, 2));   // == BET: no.
    EXPECT_FALSE(shouldGateSw(30, 32, 2));
    EXPECT_FALSE(shouldGateSw(100, 32, 60)); // 2x delay dominates.
    EXPECT_TRUE(shouldGateSw(121, 32, 60));
}

TEST(Bet, HwPolicyRule)
{
    EXPECT_TRUE(wouldGateHw(10, 10));
    EXPECT_FALSE(wouldGateHw(9, 10));
}

}  // namespace
}  // namespace core
}  // namespace regate
