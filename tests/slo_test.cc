/**
 * @file
 * Tests for the SLO-compliant configuration search (§3, Table 4).
 */

#include <gtest/gtest.h>

#include "sim/slo.h"

namespace regate {
namespace sim {
namespace {

using arch::NpuGeneration;
using models::Workload;

TEST(Slo, TargetIsFiveTimesDefaultLatency)
{
    auto rep = simulateWorkload(Workload::DlrmS, NpuGeneration::D);
    double default_spu =
        rep.run().result(Policy::NoPG).seconds / rep.units;
    EXPECT_NEAR(sloTargetSecondsPerUnit(Workload::DlrmS),
                5.0 * default_spu, default_spu * 0.01);
}

TEST(Slo, CandidatesNonEmptyAndConsistent)
{
    for (auto w : {Workload::DlrmS, Workload::Prefill8B}) {
        auto cands = candidateSetups(w, NpuGeneration::D);
        EXPECT_FALSE(cands.empty());
        for (const auto &s : cands) {
            EXPECT_GE(s.chips, 1);
            EXPECT_GE(s.batch, 1);
            EXPECT_LE(s.par.dp, s.batch);
        }
    }
}

TEST(Slo, NpuDMeetsItsOwnSlo)
{
    // The SLO is defined from NPU-D's default config at 5x latency:
    // NPU-D itself must comply with ratio 1.
    auto res = findBestSetup(Workload::DlrmS, NpuGeneration::D);
    EXPECT_DOUBLE_EQ(res.sloRatio, 1.0);
    EXPECT_LE(res.secondsPerUnit,
              sloTargetSecondsPerUnit(Workload::DlrmS) * 1.0001);
}

TEST(Slo, PicksMostEfficientCompliant)
{
    auto res = findBestSetup(Workload::DlrmS, NpuGeneration::D);
    double target = sloTargetSecondsPerUnit(Workload::DlrmS);
    for (const auto &s : candidateSetups(Workload::DlrmS,
                                         NpuGeneration::D)) {
        auto rep = simulateWorkload(Workload::DlrmS, NpuGeneration::D,
                                    {}, &s);
        double spu = rep.run().result(Policy::NoPG).seconds / rep.units;
        if (spu <= target) {
            EXPECT_LE(res.energyPerUnit,
                      rep.energyPerUnit(Policy::NoPG) * 1.0001);
        }
    }
}

TEST(Slo, OlderGenerationMayRelax)
{
    // NPU-A on a big model: either compliant or reports a >= 2x
    // relaxed ratio like Fig. 2's bar labels.
    auto res = findBestSetup(Workload::Prefill13B, NpuGeneration::A);
    EXPECT_GE(res.sloRatio, 1.0);
    EXPECT_GT(res.energyPerUnit, 0.0);
}

}  // namespace
}  // namespace sim
}  // namespace regate
