/**
 * @file
 * Tests for the Llama workload generators: parameter counts against
 * the public model cards, graph structure, parallelism effects, and
 * phase characteristics (prefill compute-bound, decode memory-bound).
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "models/llama.h"

namespace regate {
namespace models {
namespace {

using graph::OpKind;

TEST(Llama, ParameterCountsMatchModelCards)
{
    // Within 10% of the nominal sizes (embeddings/rounding differ).
    EXPECT_NEAR(llamaConfig(LlamaModel::L8B).params() / 1e9, 8.0, 0.8);
    EXPECT_NEAR(llamaConfig(LlamaModel::L13B).params() / 1e9, 13.0,
                1.3);
    EXPECT_NEAR(llamaConfig(LlamaModel::L70B).params() / 1e9, 70.0,
                7.0);
    EXPECT_NEAR(llamaConfig(LlamaModel::L405B).params() / 1e9, 405.0,
                40.0);
}

TEST(Llama, KvCacheBytes)
{
    // 70B GQA: 8 KV heads x 128 dims x 80 layers x 2 (K,V) x 2 B.
    EXPECT_DOUBLE_EQ(llamaConfig(LlamaModel::L70B).kvBytesPerToken(),
                     2.0 * 80 * 8 * 128 * 2);
}

TEST(Llama, PrefillGraphStructure)
{
    const auto &cfg = llamaConfig(LlamaModel::L8B);
    auto g = llamaPrefill(cfg, 4, 4096, {1, 2, 1});
    g.validate();
    // Layer block repeats `layers` times.
    EXPECT_EQ(g.blocks[0].repeat, 32u);
    // Tensor parallelism inserts two AllReduces per layer.
    int collectives = 0;
    for (const auto &op : g.blocks[0].ops)
        collectives += op.kind == OpKind::Collective ? 1 : 0;
    EXPECT_EQ(collectives, 2);
}

TEST(Llama, NoCollectivesWithoutTp)
{
    auto g = llamaPrefill(llamaConfig(LlamaModel::L8B), 4, 4096,
                          {1, 1, 1});
    for (const auto &op : g.blocks[0].ops)
        EXPECT_NE(op.kind, OpKind::Collective) << op.name;
}

TEST(Llama, PrefillIsComputeBound)
{
    auto g = llamaPrefill(llamaConfig(LlamaModel::L8B), 4, 4096,
                          {1, 1, 1});
    // Arithmetic intensity (FLOPs per HBM byte) should be high.
    EXPECT_GT(g.totalFlops() / g.totalHbmBytes(), 100.0);
}

TEST(Llama, DecodeIsMemoryBound)
{
    auto g = llamaDecode(llamaConfig(LlamaModel::L8B), 4, 4096, 512,
                         {1, 1, 1});
    EXPECT_LT(g.totalFlops() / g.totalHbmBytes(), 10.0);
}

TEST(Llama, DecodeRepeatsPerToken)
{
    const auto &cfg = llamaConfig(LlamaModel::L13B);
    auto g = llamaDecode(cfg, 4, 4096, 512, {1, 1, 1});
    EXPECT_EQ(g.blocks[0].repeat, 512u * 40u);
}

TEST(Llama, DecodeGemmsHaveSmallM)
{
    auto g = llamaDecode(llamaConfig(LlamaModel::L8B), 4, 4096, 512,
                         {1, 1, 1});
    for (const auto &op : g.blocks[0].ops) {
        if (op.kind == OpKind::MatMul && op.name == "qkv_proj")
            EXPECT_EQ(op.m, 4);  // batch only; §3's VU-mapping driver.
    }
}

TEST(Llama, TensorParallelismShrinksPerChipWork)
{
    const auto &cfg = llamaConfig(LlamaModel::L70B);
    auto tp1 = llamaPrefill(cfg, 8, 4096, {1, 1, 1});
    auto tp8 = llamaPrefill(cfg, 8, 4096, {1, 8, 1});
    EXPECT_GT(tp1.totalFlops(), 4.0 * tp8.totalFlops());
}

TEST(Llama, DataParallelismShardsBatch)
{
    const auto &cfg = llamaConfig(LlamaModel::L8B);
    auto dp1 = llamaPrefill(cfg, 8, 4096, {1, 1, 1});
    auto dp4 = llamaPrefill(cfg, 8, 4096, {4, 1, 1});
    EXPECT_NEAR(dp1.totalFlops() / dp4.totalFlops(), 4.0, 0.5);
}

TEST(Llama, TrainingCostsRoughlyThreeForwardPasses)
{
    const auto &cfg = llamaConfig(LlamaModel::L8B);
    auto fwd = llamaPrefill(cfg, 32, 4096, {1, 1, 1});
    auto train = llamaTraining(cfg, 32, 4096, {1, 1, 1});
    EXPECT_NEAR(train.totalFlops() / fwd.totalFlops(), 3.0, 0.3);
}

TEST(Llama, TrainingWithDpHasGradAllReduce)
{
    const auto &cfg = llamaConfig(LlamaModel::L8B);
    auto g = llamaTraining(cfg, 32, 4096, {2, 1, 1});
    bool found = false;
    for (const auto &b : g.blocks)
        for (const auto &op : b.ops)
            found |= op.name == "grad.allreduce";
    EXPECT_TRUE(found);
}

TEST(Llama, PipelineAddsP2pBlock)
{
    const auto &cfg = llamaConfig(LlamaModel::L70B);
    auto g = llamaPrefill(cfg, 8, 4096, {1, 1, 2});
    bool found = false;
    for (const auto &b : g.blocks)
        found |= b.name == "pipeline-xfer";
    EXPECT_TRUE(found);
    // Layers split across stages.
    EXPECT_EQ(g.blocks[0].repeat, 40u);
}

TEST(Llama, RejectsOverpartitionedBatch)
{
    EXPECT_THROW(
        llamaPrefill(llamaConfig(LlamaModel::L8B), 2, 4096, {4, 1, 1}),
        ConfigError);
}

}  // namespace
}  // namespace models
}  // namespace regate
