/**
 * @file
 * Tests for the obs/ telemetry subsystem (src/obs/): counter /
 * gauge / histogram semantics of obs::MetricsRegistry, the runtime
 * enable gate, resetForTest's keep-registrations contract, the
 * byte-stable canonical snapshot, and the TraceRecorder's
 * Chrome-trace output shape.
 *
 * The registry and the recorder are process-wide singletons, so
 * every test starts from resetForTest() and uses names under a
 * test-local prefix — the same discipline the fixture documents for
 * the rest of the suite.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace regate {
namespace obs {
namespace {

class MetricsTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        MetricsRegistry::setEnabled(true);
        MetricsRegistry::instance().resetForTest();
    }

    void
    TearDown() override
    {
        // Leave no bleed for whoever runs next in this process.
        MetricsRegistry::instance().resetForTest();
        MetricsRegistry::setEnabled(true);
    }
};

TEST_F(MetricsTest, CounterAccumulatesAndRelookupAliases)
{
    auto &reg = MetricsRegistry::instance();
    auto &c = reg.counter("test.counter.a");
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);

    // Find-or-create: the same name is the same instrument.
    EXPECT_EQ(&reg.counter("test.counter.a"), &c);
    reg.addCounter("test.counter.a", 8);
    EXPECT_EQ(c.value(), 50u);
}

TEST_F(MetricsTest, GaugeLastWriterWins)
{
    auto &g = MetricsRegistry::instance().gauge("test.gauge.depth");
    EXPECT_EQ(g.value(), 0);
    g.set(7);
    g.set(-3);
    EXPECT_EQ(g.value(), -3);
}

TEST_F(MetricsTest, HistogramBucketsAndExactMoments)
{
    auto &h = MetricsRegistry::instance().histogram(
        "test.hist.explicit", {10, 100});
    // Bounds are inclusive upper bounds; past the last is overflow.
    h.record(5);     // <= 10
    h.record(10);    // == bound -> same bucket
    h.record(50);    // <= 100
    h.record(1000);  // overflow
    EXPECT_EQ(h.bucketCounts(),
              (std::vector<std::uint64_t>{2, 1, 1}));
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1065u);
    EXPECT_DOUBLE_EQ(h.mean(), 1065.0 / 4.0);

    // Batch recording: n samples of one value, exact moments.
    h.record(7, 5);
    EXPECT_EQ(h.count(), 9u);
    EXPECT_EQ(h.sum(), 1100u);
}

TEST_F(MetricsTest, HistogramBoundsApplyOnCreationOnly)
{
    auto &reg = MetricsRegistry::instance();
    auto &h = reg.histogram("test.hist.bounds", {1, 2});
    auto &again = reg.histogram("test.hist.bounds", {500});
    EXPECT_EQ(&again, &h);
    EXPECT_EQ(h.bounds(), (std::vector<std::uint64_t>{1, 2}));

    // Empty bounds mean the fleet-canonical duration buckets, so
    // agent- and driver-side case histograms align bucket-for-bucket.
    auto &d = reg.histogram("test.hist.durations");
    EXPECT_EQ(d.bounds(), durationUsBounds());
}

TEST_F(MetricsTest, SetEnabledGatesEveryRecordingPath)
{
    auto &reg = MetricsRegistry::instance();
    auto &c = reg.counter("test.gate.counter");
    auto &g = reg.gauge("test.gate.gauge");
    auto &h = reg.histogram("test.gate.hist");

    MetricsRegistry::setEnabled(false);
    EXPECT_FALSE(MetricsRegistry::enabled());
    c.add(5);
    g.set(5);
    h.record(5);
    reg.addCounter("test.gate.counter", 5);
    // Reads still work while disabled; nothing was recorded.
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0);
    EXPECT_EQ(h.count(), 0u);

    MetricsRegistry::setEnabled(true);
    c.add(5);
    EXPECT_EQ(c.value(), 5u);
}

TEST_F(MetricsTest, ResetZeroesButKeepsReferencesValid)
{
    auto &reg = MetricsRegistry::instance();
    auto &c = reg.counter("test.reset.counter");
    auto &h = reg.histogram("test.reset.hist", {10});
    c.add(3);
    h.record(4);

    reg.resetForTest();
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0u);
    EXPECT_EQ(h.bucketCounts(),
              (std::vector<std::uint64_t>{0, 0}));

    // The cached references survive the reset and keep recording —
    // the hot paths never re-look-up their instruments.
    c.add(1);
    h.record(1);
    EXPECT_EQ(c.value(), 1u);
    EXPECT_EQ(h.count(), 1u);
}

TEST_F(MetricsTest, CounterValuesSortedByName)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("test.values.b", 2);
    reg.addCounter("test.values.a", 1);
    auto values = reg.counterValues();
    // The registry may hold other (zeroed) names; ours must appear
    // in sorted order with the recorded values.
    std::vector<std::pair<std::string, std::uint64_t>> ours;
    for (const auto &nv : values) {
        if (nv.first.rfind("test.values.", 0) == 0)
            ours.push_back(nv);
    }
    ASSERT_EQ(ours.size(), 2u);
    EXPECT_EQ(ours[0].first, "test.values.a");
    EXPECT_EQ(ours[0].second, 1u);
    EXPECT_EQ(ours[1].first, "test.values.b");
    EXPECT_EQ(ours[1].second, 2u);
    EXPECT_TRUE(std::is_sorted(values.begin(), values.end()));
}

TEST_F(MetricsTest, HistogramPercentilesFromBucketBounds)
{
    auto &h = MetricsRegistry::instance().histogram(
        "test.pct.hist", {10, 100, 1000});
    // 10 samples: 6 in <=10, 3 in <=100, 1 in <=1000. Percentiles
    // report the inclusive upper bound of the covering bucket.
    h.record(5, 6);
    h.record(50, 3);
    h.record(500, 1);
    EXPECT_EQ(h.percentile(0.50), 10u);
    EXPECT_EQ(h.percentile(0.60), 10u);
    EXPECT_EQ(h.percentile(0.61), 100u);
    EXPECT_EQ(h.percentile(0.90), 100u);
    EXPECT_EQ(h.percentile(0.95), 1000u);
    EXPECT_EQ(h.percentile(0.99), 1000u);
    EXPECT_EQ(h.percentile(1.0), 1000u);
    // q clamps; rank floors at the first sample.
    EXPECT_EQ(h.percentile(0.0), 10u);
    EXPECT_EQ(h.percentile(-1.0), 10u);
    EXPECT_EQ(h.percentile(2.0), 1000u);
}

TEST_F(MetricsTest, HistogramPercentileEdgeCases)
{
    // Empty: 0, not a crash.
    auto &empty =
        MetricsRegistry::instance().histogram("test.pct.empty");
    EXPECT_EQ(empty.percentile(0.99), 0u);

    // Overflow-bucket samples report the largest finite bound — a
    // documented lower bound, still canonical and integer.
    std::vector<std::uint64_t> bounds = {10, 100};
    std::vector<std::uint64_t> buckets = {0, 0, 4};
    EXPECT_EQ(histogramPercentile(bounds, buckets, 4, 0.5), 100u);
    EXPECT_EQ(histogramPercentile(bounds, buckets, 4, 0.99), 100u);
    EXPECT_EQ(histogramPercentile(bounds, buckets, 0, 0.5), 0u);
}

TEST_F(MetricsTest, SnapshotCarriesDerivedQuantiles)
{
    auto &reg = MetricsRegistry::instance();
    auto &h = reg.histogram("test.quant.dur", {10, 100, 1000});
    h.record(5, 98);
    h.record(500, 2);
    auto snapshot = reg.snapshotJson();
    EXPECT_NE(snapshot.find("\"test.quant.dur\": {\"count\": 100, "
                            "\"sum\": 1490, \"mean\": 14.9, "
                            "\"p50\": 10, \"p95\": 10, "
                            "\"p99\": 1000"),
              std::string::npos)
        << snapshot;
}

TEST_F(MetricsTest, WriteSnapshotIsAtomicAndCanonical)
{
    auto &reg = MetricsRegistry::instance();
    reg.addCounter("test.write.hits", 3);
    std::string path =
        ::testing::TempDir() + "obs_write_snapshot.json";
    auto returned = reg.writeSnapshot(path);
    EXPECT_EQ(returned, reg.snapshotJson());

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    EXPECT_EQ(buffer.str(), returned);
    // The .part staging file was renamed away, not left behind.
    EXPECT_FALSE(std::ifstream(path + ".part").good());
    std::remove(path.c_str());
}

TEST_F(MetricsTest, SnapshotIsByteStableAndStateSensitive)
{
    auto &reg = MetricsRegistry::instance();
    auto buildState = [&] {
        reg.addCounter("test.snap.hits", 12);
        reg.gauge("test.snap.depth").set(-4);
        reg.recordHistogram("test.snap.dur", 150, 3);
    };
    buildState();
    auto first = reg.snapshotJson();

    // Same state (after a reset rebuild) -> same bytes.
    reg.resetForTest();
    buildState();
    EXPECT_EQ(reg.snapshotJson(), first);

    // Any movement changes the bytes (and the digest footer).
    reg.addCounter("test.snap.hits", 1);
    auto moved = reg.snapshotJson();
    EXPECT_NE(moved, first);

    // Canonical shape: fixed header, a digest footer, our rows.
    EXPECT_EQ(first.rfind("{\n\"obs\": \"regate-metrics\",\n"
                          "\"version\": 1,\n", 0), 0u);
    EXPECT_NE(first.find("\"test.snap.hits\": 12"),
              std::string::npos);
    EXPECT_NE(first.find("\"test.snap.depth\": -4"),
              std::string::npos);
    EXPECT_NE(first.find("\"test.snap.dur\": {\"count\": 3, "
                         "\"sum\": 450, \"mean\": 150"),
              std::string::npos);
    EXPECT_NE(first.find("\"digest\": \""), std::string::npos);
}

TEST_F(MetricsTest, ConcurrentRecordingLosesNothing)
{
    auto &reg = MetricsRegistry::instance();
    auto &c = reg.counter("test.mt.counter");
    auto &h = reg.histogram("test.mt.hist", {100});
    constexpr int kThreads = 4;
    constexpr int kPerThread = 10000;
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
        threads.emplace_back([&] {
            for (int i = 0; i < kPerThread; ++i) {
                c.add(1);
                h.record(1);
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_EQ(c.value(),
              std::uint64_t(kThreads) * kPerThread);
    EXPECT_EQ(h.count(),
              std::uint64_t(kThreads) * kPerThread);
}

// ------------------------- TraceRecorder --------------------------

TEST(TraceRecorderTest, RecordsSpansAndFlushesSortedJson)
{
    auto &trace = TraceRecorder::instance();
    std::string path = ::testing::TempDir() + "obs_trace_test.json";
    trace.start(path);
    ASSERT_TRUE(trace.enabled());

    auto t0 = trace.nowUs();
    {
        TraceRecorder::Span span("outer", "test");
        trace.instant("tick", "test", {{"k", "v"}});
        trace.instantLane("slot-tick", "test", 7);
        auto inner_start = trace.nowUs();
        EXPECT_GE(inner_start, t0);
        trace.complete("inner", "test", inner_start);
    }
    trace.completeLane("lane-span", "test", 9, t0, trace.nowUs());
    trace.flush();

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto text = buffer.str();

    // Shape: a JSON array with one event object per line, carrying
    // the trace_event keys (full validation is tools/trace_check.py;
    // this pins what the writer emits).
    EXPECT_EQ(text.front(), '[');
    for (const char *needle :
         {"\"name\": \"outer\"", "\"name\": \"inner\"",
          "\"name\": \"tick\"", "\"name\": \"slot-tick\"",
          "\"name\": \"lane-span\"", "\"ph\": \"X\"",
          "\"ph\": \"i\"", "\"s\": \"t\"", "\"tid\": 7",
          "\"tid\": 9", "\"args\": {\"k\": \"v\"}", "\"dur\": "})
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing " << needle << " in:\n" << text;

    // flush() writes timestamp-sorted events: the ts values appear
    // in non-decreasing file order.
    std::int64_t last_ts = -1;
    std::size_t at = 0;
    int events = 0;
    while ((at = text.find("\"ts\": ", at)) != std::string::npos) {
        at += 6;
        auto ts = std::stoll(text.substr(at));
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
        ++events;
    }
    EXPECT_EQ(events, 5);

    // Repeated flush retains everything recorded so far.
    trace.flush();
    std::ifstream again(path);
    std::stringstream buffer2;
    buffer2 << again.rdbuf();
    EXPECT_EQ(buffer2.str(), text);
    std::remove(path.c_str());
}

// ------------------------- FlightRecorder -------------------------

/** Slurp @p path; empty string when unreadable. */
std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

class FlightRecorderTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        // The rings are process-wide; tests share them via reset.
        FlightRecorder::instance().resetForTest();
        FlightRecorder::setEnabled(true);
    }

    void
    TearDown() override
    {
        FlightRecorder::instance().resetForTest();
        FlightRecorder::setEnabled(true);
    }
};

TEST_F(FlightRecorderTest, DumpEmitsSortedParseableEvents)
{
    auto &fr = FlightRecorder::instance();
    ASSERT_TRUE(fr.enabled());
    fr.instant("flight.first", "detail-1");
    auto t0 = fr.nowUs();
    fr.begin("flight.open");
    fr.instant("flight.mid", nullptr, 5);
    fr.complete("flight.span", t0, fr.nowUs(), "k=v", 7);
    // "flight.open" stays open on purpose: a dump must render the
    // 'B' without a matching 'E'.

    std::string path =
        ::testing::TempDir() + "obs_flight_dump.json";
    ASSERT_TRUE(fr.dump(path));
    auto text = slurp(path);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.front(), '[');
    for (const char *needle :
         {"\"name\": \"flight.first\"", "\"ph\": \"i\"",
          "\"name\": \"flight.open\"", "\"ph\": \"B\"",
          "\"name\": \"flight.mid\"", "\"tid\": 5",
          "\"name\": \"flight.span\"", "\"ph\": \"X\"",
          "\"tid\": 7", "\"cat\": \"flight\"",
          "\"args\": {\"detail\": \"detail-1\"}",
          "\"args\": {\"detail\": \"k=v\"}"})
        EXPECT_NE(text.find(needle), std::string::npos)
            << "missing " << needle << " in:\n" << text;

    // File order is ts-monotone (the handler's heapsort).
    std::int64_t last_ts = -1;
    std::size_t at = 0;
    int events = 0;
    while ((at = text.find("\"ts\": ", at)) != std::string::npos) {
        at += 6;
        auto ts = std::stoll(text.substr(at));
        EXPECT_GE(ts, last_ts);
        last_ts = ts;
        ++events;
    }
    EXPECT_EQ(events, 4);
    std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, SetEnabledGatesRecording)
{
    auto &fr = FlightRecorder::instance();
    FlightRecorder::setEnabled(false);
    EXPECT_FALSE(fr.enabled());
    fr.instant("flight.gated");

    FlightRecorder::setEnabled(true);
    fr.instant("flight.ungated");

    std::string path =
        ::testing::TempDir() + "obs_flight_gate.json";
    ASSERT_TRUE(fr.dump(path));
    auto text = slurp(path);
    EXPECT_EQ(text.find("flight.gated\""), std::string::npos);
    EXPECT_NE(text.find("flight.ungated"), std::string::npos);
    std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, SpanMirrorsBeginEndIntoRings)
{
    {
        TraceRecorder::Span span("flight.mirrored", "test");
    }
    std::string path =
        ::testing::TempDir() + "obs_flight_span.json";
    ASSERT_TRUE(FlightRecorder::instance().dump(path));
    auto text = slurp(path);
    // Both edges landed: the 'B' at construction, the 'E' at scope
    // exit (so a crash between them leaves the open 'B' only).
    auto b = text.find("\"name\": \"flight.mirrored\", "
                       "\"cat\": \"flight\", \"ph\": \"B\"");
    auto e = text.find("\"name\": \"flight.mirrored\", "
                       "\"cat\": \"flight\", \"ph\": \"E\"");
    EXPECT_NE(b, std::string::npos) << text;
    EXPECT_NE(e, std::string::npos) << text;
    EXPECT_LT(b, e);
    std::remove(path.c_str());
}

TEST_F(FlightRecorderTest, LongNamesAndDetailsTruncateSafely)
{
    auto &fr = FlightRecorder::instance();
    std::string long_name(3 * FlightRecorder::kNameBytes, 'n');
    std::string long_detail(3 * FlightRecorder::kDetailBytes, 'd');
    fr.instant(long_name.c_str(), long_detail.c_str());

    std::string path =
        ::testing::TempDir() + "obs_flight_trunc.json";
    ASSERT_TRUE(fr.dump(path));
    auto text = slurp(path);
    // Truncated to the fixed slot capacity (minus the NUL), never
    // overflowing into adjacent fields.
    EXPECT_NE(text.find('"' +
                        std::string(FlightRecorder::kNameBytes - 1,
                                    'n') +
                        '"'),
              std::string::npos)
        << text;
    EXPECT_EQ(text.find(std::string(FlightRecorder::kNameBytes,
                                    'n')),
              std::string::npos);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace obs
}  // namespace regate
