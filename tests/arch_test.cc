/**
 * @file
 * Tests for the NPU configurations (Table 2) and power-gating
 * parameters (Table 3).
 */

#include <gtest/gtest.h>

#include "arch/component.h"
#include "arch/gating_params.h"
#include "arch/npu_config.h"
#include "common/error.h"

namespace regate {
namespace arch {
namespace {

TEST(NpuConfig, Table2Values)
{
    const auto &a = npuConfig(NpuGeneration::A);
    EXPECT_EQ(a.name, "NPU-A");
    EXPECT_EQ(a.deploymentYear, 2017);
    EXPECT_EQ(a.numSa, 2);
    EXPECT_EQ(a.saWidth, 128);
    EXPECT_EQ(a.sramBytes, units::MiB(32));
    EXPECT_EQ(a.iciLinks, 4);
    EXPECT_EQ(a.torusDims, 2);

    const auto &d = npuConfig(NpuGeneration::D);
    EXPECT_EQ(d.numSa, 8);
    EXPECT_EQ(d.numVu, 6);
    EXPECT_EQ(d.hbmType, "HBM2e");
    EXPECT_EQ(d.torusDims, 3);
    EXPECT_DOUBLE_EQ(d.hbmBandwidth, units::GBps(2765));

    const auto &e = npuConfig(NpuGeneration::E);
    EXPECT_EQ(e.saWidth, 256);
    EXPECT_EQ(e.sramBytes, units::MiB(256));
}

TEST(NpuConfig, PeakFlopsMatchesPublicTpuNumbers)
{
    // TPUv2 ~46 TFLOPs, TPUv3 ~123 TFLOPs, TPUv5p ~459 TFLOPs bf16.
    EXPECT_NEAR(npuConfig(NpuGeneration::A).peakFlops() / 1e12, 45.9,
                0.5);
    EXPECT_NEAR(npuConfig(NpuGeneration::B).peakFlops() / 1e12, 123.2,
                1.0);
    EXPECT_NEAR(npuConfig(NpuGeneration::D).peakFlops() / 1e12, 458.8,
                1.0);
}

TEST(NpuConfig, DerivedQuantities)
{
    const auto &d = npuConfig(NpuGeneration::D);
    EXPECT_EQ(d.vuLanes(), 1024);
    EXPECT_EQ(d.sramSegments(), units::MiB(128) / units::KiB(4));
    EXPECT_DOUBLE_EQ(d.iciBandwidth(), 6 * units::GBps(100));
    EXPECT_EQ(d.cyclesFor(0.0), 0u);
    EXPECT_EQ(d.cyclesFor(1.0 / d.frequencyHz), 1u);
}

TEST(NpuConfig, LookupByName)
{
    EXPECT_EQ(npuConfigByName("NPU-C").generation, NpuGeneration::C);
    EXPECT_EQ(npuConfigByName("c").generation, NpuGeneration::C);
    EXPECT_THROW(npuConfigByName("NPU-Z"), ConfigError);
}

TEST(NpuConfig, AllGenerationsValidate)
{
    for (auto gen : allGenerations())
        EXPECT_NO_THROW(npuConfig(gen).validate());
}

TEST(GatingParams, Table3Defaults)
{
    GatingParams p;
    EXPECT_EQ(p.onOffDelay(GatedUnit::SaPe), 1u);
    EXPECT_EQ(p.breakEven(GatedUnit::SaPe), 47u);
    EXPECT_EQ(p.onOffDelay(GatedUnit::SaFull), 10u);
    EXPECT_EQ(p.breakEven(GatedUnit::SaFull), 469u);
    EXPECT_EQ(p.onOffDelay(GatedUnit::Vu), 2u);
    EXPECT_EQ(p.breakEven(GatedUnit::Vu), 32u);
    EXPECT_EQ(p.onOffDelay(GatedUnit::Hbm), 60u);
    EXPECT_EQ(p.breakEven(GatedUnit::Hbm), 412u);
    EXPECT_EQ(p.onOffDelay(GatedUnit::Ici), 60u);
    EXPECT_EQ(p.breakEven(GatedUnit::Ici), 459u);
    EXPECT_EQ(p.onOffDelay(GatedUnit::SramSleep), 4u);
    EXPECT_EQ(p.breakEven(GatedUnit::SramSleep), 41u);
    EXPECT_EQ(p.onOffDelay(GatedUnit::SramOff), 10u);
    EXPECT_EQ(p.breakEven(GatedUnit::SramOff), 82u);
}

TEST(GatingParams, DefaultLeakageRatios)
{
    GatingParams p;
    EXPECT_DOUBLE_EQ(p.gatedLeakage(GatedUnit::Vu), 0.03);
    EXPECT_DOUBLE_EQ(p.gatedLeakage(GatedUnit::SramSleep), 0.25);
    EXPECT_DOUBLE_EQ(p.gatedLeakage(GatedUnit::SramOff), 0.002);
}

TEST(GatingParams, DetectionWindowIsThirdOfBet)
{
    GatingParams p;
    EXPECT_EQ(p.detectionWindow(GatedUnit::SaFull), 469u / 3);
    EXPECT_EQ(p.detectionWindow(GatedUnit::Vu), 32u / 3);
    EXPECT_GE(p.detectionWindow(GatedUnit::SaPe), 1u);
}

TEST(GatingParams, DelayScaleRoundsUp)
{
    GatingParams p;
    p.setDelayScale(1.5);
    EXPECT_EQ(p.onOffDelay(GatedUnit::SaPe), 2u);   // ceil(1.5)
    EXPECT_EQ(p.onOffDelay(GatedUnit::Vu), 3u);     // ceil(3)
    EXPECT_EQ(p.breakEven(GatedUnit::Vu), 48u);
    EXPECT_THROW(p.setDelayScale(0.0), ConfigError);
    EXPECT_THROW(p.setDelayScale(-1.0), ConfigError);
}

TEST(GatingParams, CustomRatios)
{
    LeakageRatios r;
    r.logicOff = 0.2;
    r.sramSleep = 0.4;
    r.sramOff = 0.1;
    GatingParams p(r);
    EXPECT_DOUBLE_EQ(p.gatedLeakage(GatedUnit::Hbm), 0.2);
    EXPECT_DOUBLE_EQ(p.gatedLeakage(GatedUnit::SramSleep), 0.4);
    EXPECT_DOUBLE_EQ(p.gatedLeakage(GatedUnit::SramOff), 0.1);
}

TEST(Component, NamesAndMap)
{
    EXPECT_EQ(componentName(Component::Sa), "SA");
    EXPECT_EQ(componentName(Component::Other), "Other");

    ComponentMap<double> m;
    m[Component::Sa] = 1.5;
    m[Component::Hbm] = 2.5;
    EXPECT_DOUBLE_EQ(m.sum(), 4.0);

    ComponentMap<double> n;
    n[Component::Sa] = 1.0;
    m += n;
    EXPECT_DOUBLE_EQ(m[Component::Sa], 2.5);
}

TEST(GatedUnit, Names)
{
    EXPECT_EQ(gatedUnitName(GatedUnit::SaPe), "SA (PE)");
    EXPECT_EQ(gatedUnitName(GatedUnit::SramOff), "SRAM (off)");
}

}  // namespace
}  // namespace arch
}  // namespace regate
