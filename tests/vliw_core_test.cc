/**
 * @file
 * Tests for the VLIW core timing model, including an
 * instruction-by-instruction reproduction of the paper's Fig. 15
 * setpm timeline.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "isa/vliw_core.h"

namespace regate {
namespace isa {
namespace {

using core::PowerMode;

VliwCoreConfig
fig15Core()
{
    // Fig. 15: 2 SAs, 2 VUs; pop takes 8 cycles; VU on/off delay 2.
    VliwCoreConfig cfg;
    cfg.numSa = 2;
    cfg.numVu = 2;
    cfg.vuWakeDelay = 2;
    cfg.saWakeDelay = 10;
    return cfg;
}

/** The exact Fig. 15 program. */
Program
fig15Program()
{
    Program p;
    // I1: {pop.sa0; pop.sa1; vadd.vu0; vadd.vu1;}
    p.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    // I2: {vadd.vu0; vadd.vu1; setpm 0b11,vu,off;}
    p.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu,
                                     PowerMode::Off);
    // I3: {pop.sa0; pop.sa1; nop 6;}
    p.bundle().saPop(0).saPop(1).nop(6);
    // I4: {setpm 0b11,vu,on;}
    p.bundle().setpm(0b11, FuType::Vu, PowerMode::On);
    // I5: {pop.sa0; pop.sa1; vadd.vu0; vadd.vu1;}
    p.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    // I6: {vadd.vu0; vadd.vu1; setpm 0b11,vu,off;}
    p.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu,
                                     PowerMode::Off);
    return p;
}

TEST(VliwCore, Fig15Timeline)
{
    VliwCore core(fig15Core());
    core.run(fig15Program());

    const auto &dispatch = core.bundleDispatch();
    ASSERT_EQ(dispatch.size(), 6u);
    // I1 at 0; I2 at 1; I3 waits for the SA pops (8); I4 after the
    // 6-cycle nop (14); I5 when SA free and VUs awake (16); I6 at 17.
    EXPECT_EQ(dispatch[0], 0u);
    EXPECT_EQ(dispatch[1], 1u);
    EXPECT_EQ(dispatch[2], 8u);
    EXPECT_EQ(dispatch[3], 14u);
    EXPECT_EQ(dispatch[4], 16u);
    EXPECT_EQ(dispatch[5], 17u);

    // No stall: the setpm-on wake (done at 16) meets the SA (free at
    // 16) exactly, the paper's point about software pre-waking.
    EXPECT_EQ(core.wakeStallCycles(), 0u);
    EXPECT_EQ(core.setpmExecuted(), 3u);

    // Each VU is power-gated for 10 cycles (paper: "ReGate maximizes
    // the power-gated cycles of VUs (10 cycles in the example)"),
    // plus a tail interval from I6's setpm-off to the end of the run.
    for (int v = 0; v < 2; ++v) {
        const auto &trace = core.vuTrace(v);
        ASSERT_EQ(trace.gated.size(), 2u) << v;
        // Gating becomes effective 2 cycles (off delay) after the
        // last vadd retires at cycle 2.
        EXPECT_EQ(trace.gated[0].start, 4u) << v;
        EXPECT_EQ(trace.gated[0].end, 14u) << v;
        EXPECT_EQ(trace.gated[0].length(), 10u) << v;
        EXPECT_EQ(trace.gated[1].start, 20u) << v;
        EXPECT_EQ(trace.gated[1].end, core.totalCycles()) << v;
    }
}

TEST(VliwCore, StructuralHazardOnBusyUnit)
{
    VliwCoreConfig cfg = fig15Core();
    VliwCore core(cfg);
    Program p;
    p.bundle().saPop(0);       // Busy [0, 8).
    p.bundle().saPop(0);       // Must wait until 8.
    core.run(p);
    EXPECT_EQ(core.bundleDispatch()[1], 8u);
}

TEST(VliwCore, GatedUnitWakesOnDispatch)
{
    VliwCoreConfig cfg = fig15Core();
    VliwCore core(cfg);
    Program p;
    p.bundle().vuOp(0);
    p.bundle().setpm(0b1, FuType::Vu, PowerMode::Off);
    p.bundle().vuOp(0);  // Wakes the VU: stalls 2 cycles.
    core.run(p);
    const auto &dispatch = core.bundleDispatch();
    EXPECT_EQ(dispatch[2], dispatch[1] + 1 + cfg.vuWakeDelay);
    EXPECT_EQ(core.wakeStallCycles(), cfg.vuWakeDelay);
    EXPECT_EQ(core.vuTrace(0).wakeEvents, 1u);
}

TEST(VliwCore, AutoIdleDetectionGatesAndStalls)
{
    VliwCoreConfig cfg = fig15Core();
    cfg.autoIdleDetect = true;
    cfg.vuIdleWindow = 10;
    VliwCore core(cfg);
    Program p;
    p.bundle().vuOp(0);
    p.bundle().saPop(0, 50);
    // The VU idles ~50 cycles (> window) while the pop runs; the
    // hardware gates it, and the next VU op pays the wake.
    p.bundle().saPop(0).vuOp(0);
    core.run(p);
    EXPECT_EQ(core.vuTrace(0).wakeEvents, 1u);
    EXPECT_GT(core.vuTrace(0).gatedCycles(), 0u);
    EXPECT_EQ(core.wakeStallCycles(), cfg.vuWakeDelay);
}

TEST(VliwCore, NoAutoDetectNoGating)
{
    VliwCoreConfig cfg = fig15Core();
    cfg.autoIdleDetect = false;
    VliwCore core(cfg);
    Program p;
    p.bundle().vuOp(0);
    p.bundle().saPop(0, 50);
    p.bundle().saPop(0).vuOp(0);
    core.run(p);
    EXPECT_EQ(core.vuTrace(0).wakeEvents, 0u);
    EXPECT_EQ(core.wakeStallCycles(), 0u);
}

TEST(VliwCore, ActivityTimelineExport)
{
    VliwCore core(fig15Core());
    core.run(fig15Program());
    auto vu = core.vuActivity(0);
    EXPECT_EQ(vu.span(), core.totalCycles());
    // vadds at cycles 0, 1, 16, 17 -> 4 active cycles, 2 runs.
    EXPECT_EQ(vu.activeCycles(), 4u);
    EXPECT_EQ(vu.activations(), 2u);
    auto sa = core.saActivity(0);
    EXPECT_EQ(sa.activeCycles(), 24u);  // Three 8-cycle pops.
}

TEST(VliwCore, RunIsSingleShot)
{
    VliwCore core(fig15Core());
    Program p;
    p.bundle().vuOp(0);
    core.run(p);
    EXPECT_THROW(core.run(p), ConfigError);
}

TEST(VliwCore, RejectsBadUnitIndices)
{
    VliwCore core(fig15Core());
    Program p;
    p.bundle().vuOp(5);
    EXPECT_THROW(core.run(p), ConfigError);
    EXPECT_THROW(core.vuTrace(9), ConfigError);
}

}  // namespace
}  // namespace isa
}  // namespace regate
