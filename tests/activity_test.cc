/**
 * @file
 * Tests for the compressed activity timelines: construction, gap
 * multisets, concatenation with seam merging, and repetition.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "common/prng.h"
#include "core/activity.h"

namespace regate {
namespace core {
namespace {

Cycles
gapTotal(const ActivityTimeline &t)
{
    Cycles total = 0;
    for (const auto &g : t.gaps())
        total += g.length * g.count;
    return total;
}

TEST(Activity, AllActive)
{
    auto t = ActivityTimeline::allActive(100);
    EXPECT_EQ(t.span(), 100u);
    EXPECT_EQ(t.activeCycles(), 100u);
    EXPECT_EQ(t.idleCycles(), 0u);
    EXPECT_EQ(t.activations(), 1u);
    EXPECT_TRUE(t.gaps().empty());
    EXPECT_DOUBLE_EQ(t.utilization(), 1.0);
    t.checkInvariants();
}

TEST(Activity, AllIdle)
{
    auto t = ActivityTimeline::allIdle(50);
    EXPECT_EQ(t.activeCycles(), 0u);
    EXPECT_EQ(t.activations(), 0u);
    ASSERT_EQ(t.gaps().size(), 1u);
    EXPECT_EQ(t.gaps()[0].length, 50u);
    EXPECT_DOUBLE_EQ(t.utilization(), 0.0);
    t.checkInvariants();
}

TEST(Activity, PeriodicFig15Pattern)
{
    // The Fig. 15 VU pattern: 2 active cycles of every 16.
    auto t = ActivityTimeline::periodic(160, 0, 2, 16);
    EXPECT_EQ(t.activations(), 10u);
    EXPECT_EQ(t.activeCycles(), 20u);
    EXPECT_EQ(gapTotal(t), 140u);
    // 9 inner gaps of 14 plus a trailing gap of 14.
    ASSERT_EQ(t.gaps().size(), 1u);
    EXPECT_EQ(t.gaps()[0].length, 14u);
    EXPECT_EQ(t.gaps()[0].count, 10u);
    t.checkInvariants();
}

TEST(Activity, PeriodicWithOffset)
{
    auto t = ActivityTimeline::periodic(100, 10, 5, 20);
    // Bursts at 10, 30, 50, 70, 90 (last ends at 95).
    EXPECT_EQ(t.activations(), 5u);
    EXPECT_EQ(t.activeCycles(), 25u);
    EXPECT_EQ(t.span(), 100u);
    t.checkInvariants();
}

TEST(Activity, PeriodicDegenerateCases)
{
    EXPECT_THROW(ActivityTimeline::periodic(10, 0, 0, 4), ConfigError);
    EXPECT_THROW(ActivityTimeline::periodic(10, 0, 5, 4), ConfigError);
    // Burst does not fit: all idle.
    auto t = ActivityTimeline::periodic(3, 2, 4, 8);
    EXPECT_EQ(t.activeCycles(), 0u);
}

TEST(Activity, FromIntervals)
{
    auto t = ActivityTimeline::fromIntervals(20, {{2, 5}, {10, 12}});
    EXPECT_EQ(t.activeCycles(), 5u);
    EXPECT_EQ(t.activations(), 2u);
    // Gaps: [0,2), [5,10), [12,20) -> lengths 2, 5, 8.
    EXPECT_EQ(t.gaps().size(), 3u);
    EXPECT_EQ(gapTotal(t), 15u);
    t.checkInvariants();
}

TEST(Activity, AppendMergesSeamGaps)
{
    // A ends with 5 idle; B starts with 3 idle -> one 8-cycle gap.
    auto a = ActivityTimeline::fromIntervals(10, {{0, 5}});
    auto b = ActivityTimeline::fromIntervals(10, {{3, 10}});
    a.append(b);
    EXPECT_EQ(a.span(), 20u);
    EXPECT_EQ(a.activeCycles(), 12u);
    EXPECT_EQ(a.activations(), 2u);
    ASSERT_EQ(a.gaps().size(), 1u);
    EXPECT_EQ(a.gaps()[0].length, 8u);
    a.checkInvariants();
}

TEST(Activity, AppendMergesAbuttingActive)
{
    auto a = ActivityTimeline::allActive(10);
    auto b = ActivityTimeline::allActive(5);
    a.append(b);
    EXPECT_EQ(a.span(), 15u);
    EXPECT_EQ(a.activations(), 1u);  // One contiguous burst.
    a.checkInvariants();
}

TEST(Activity, AppendAllIdleRuns)
{
    auto a = ActivityTimeline::allIdle(10);
    a.append(ActivityTimeline::allIdle(20));
    EXPECT_EQ(a.span(), 30u);
    ASSERT_EQ(a.gaps().size(), 1u);
    EXPECT_EQ(a.gaps()[0].length, 30u);
    a.checkInvariants();
}

TEST(Activity, AppendIdleThenActive)
{
    auto a = ActivityTimeline::allIdle(10);
    a.append(ActivityTimeline::allActive(10));
    EXPECT_EQ(a.span(), 20u);
    EXPECT_EQ(a.activeCycles(), 10u);
    EXPECT_EQ(a.activations(), 1u);
    ASSERT_EQ(a.gaps().size(), 1u);
    EXPECT_EQ(a.gaps()[0].length, 10u);
    a.checkInvariants();
}

TEST(Activity, RepeatedMatchesManualAppend)
{
    auto unit = ActivityTimeline::fromIntervals(16, {{5, 7}});
    auto manual = unit;
    for (int i = 0; i < 4; ++i)
        manual.append(unit);
    auto fast = unit.repeated(5);

    EXPECT_EQ(fast.span(), manual.span());
    EXPECT_EQ(fast.activeCycles(), manual.activeCycles());
    EXPECT_EQ(fast.activations(), manual.activations());
    EXPECT_EQ(gapTotal(fast), gapTotal(manual));
    fast.checkInvariants();
}

TEST(Activity, RepeatedAllActiveMergesBursts)
{
    auto t = ActivityTimeline::allActive(8).repeated(100);
    EXPECT_EQ(t.span(), 800u);
    EXPECT_EQ(t.activations(), 1u);
    t.checkInvariants();
}

TEST(Activity, RepeatedZeroAndOne)
{
    auto t = ActivityTimeline::allActive(8);
    EXPECT_EQ(t.repeated(0).span(), 0u);
    EXPECT_EQ(t.repeated(1).span(), 8u);
}

TEST(Activity, RepeatedPropertyRandomized)
{
    Prng rng(99);
    for (int iter = 0; iter < 30; ++iter) {
        Cycles span = 10 + rng.uniform(0, 40);
        std::vector<Interval> ivs;
        Cycles cursor = rng.uniform(0, 3);
        while (cursor + 2 < span) {
            Cycles len = 1 + rng.uniform(0, 4);
            Cycles end = std::min(span, cursor + len);
            ivs.push_back({cursor, end});
            cursor = end + 1 + rng.uniform(0, 5);
        }
        auto unit = ActivityTimeline::fromIntervals(span, ivs);
        std::uint64_t reps = 2 + rng.uniform(0, 6);

        auto manual = unit;
        for (std::uint64_t i = 1; i < reps; ++i)
            manual.append(unit);
        auto fast = unit.repeated(reps);

        EXPECT_EQ(fast.span(), manual.span());
        EXPECT_EQ(fast.activeCycles(), manual.activeCycles());
        EXPECT_EQ(fast.activations(), manual.activations());
        EXPECT_EQ(gapTotal(fast), gapTotal(manual));
        fast.checkInvariants();
        manual.checkInvariants();
    }
}

}  // namespace
}  // namespace core
}  // namespace regate
