/**
 * @file
 * Tests for the SA gating control logic (Fig. 12): zero-weight
 * detection and the row/column prefix-OR maps.
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "sa/sa_gating.h"

namespace regate {
namespace sa {
namespace {

TEST(ZeroDetect, BuildsBitmapsRowByRow)
{
    ZeroWeightDetector d(4);
    d.pushRow({0, 4, 0, 0});
    d.pushRow({0, 0, 0, 0});
    d.pushRow({1, 0, 2, 0});

    EXPECT_EQ(d.rowsPushed(), 3);
    Bitmap row_expect = {true, false, true, false};
    Bitmap col_expect = {true, true, true, false};
    EXPECT_EQ(d.rowNonZero(), row_expect);
    EXPECT_EQ(d.colNonZero(), col_expect);
}

TEST(ZeroDetect, RejectsBadInput)
{
    ZeroWeightDetector d(2);
    EXPECT_THROW(d.pushRow({1.0}), ConfigError);
    d.pushRow({1, 0});
    d.pushRow({0, 0});
    EXPECT_THROW(d.pushRow({0, 0}), ConfigError);  // Too many rows.
    EXPECT_THROW(ZeroWeightDetector(0), ConfigError);
}

TEST(PrefixOr, PaperExampleColumns)
{
    // Paper: col_nz = 0100 (column 1 non-zero) -> col_on = 1100.
    Bitmap col_nz = {false, true, false, false};
    Bitmap on = colOnFromNonZero(col_nz);
    Bitmap expect = {true, true, false, false};
    EXPECT_EQ(on, expect);
}

TEST(PrefixOr, RowsPropagateDownward)
{
    // Rows pass partial sums downward: everything at or below the
    // first non-zero row stays on.
    Bitmap row_nz = {false, false, true, false};
    Bitmap on = rowOnFromNonZero(row_nz);
    Bitmap expect = {false, false, true, true};
    EXPECT_EQ(on, expect);
}

TEST(PrefixOr, AllZeroGatesEverything)
{
    Bitmap nz(8, false);
    EXPECT_EQ(popcount(rowOnFromNonZero(nz)), 0);
    EXPECT_EQ(popcount(colOnFromNonZero(nz)), 0);
}

TEST(PrefixOr, DenseKeepsEverythingOn)
{
    Bitmap nz(8, true);
    EXPECT_EQ(popcount(rowOnFromNonZero(nz)), 8);
    EXPECT_EQ(popcount(colOnFromNonZero(nz)), 8);
}

TEST(PrefixOr, TopPaddedWeightsGateTopRows)
{
    // K < width pads zeros at the top: rows above the first weight
    // row can be fully off.
    Bitmap row_nz = {false, false, false, true, true, true};
    auto on = rowOnFromNonZero(row_nz);
    EXPECT_EQ(popcount(on), 3);
    EXPECT_FALSE(on[0]);
    EXPECT_TRUE(on[3]);
}

TEST(PrefixOr, RightPaddedWeightsGateRightColumns)
{
    // N < width pads zeros at the right: columns past the last
    // weight column can be fully off.
    Bitmap col_nz = {true, true, false, false};
    auto on = colOnFromNonZero(col_nz);
    EXPECT_EQ(popcount(on), 2);
    EXPECT_TRUE(on[0]);
    EXPECT_FALSE(on[2]);
}

TEST(PrefixOr, InteriorZeroColumnStaysOnToPassData)
{
    // A zero column with non-zero columns to its right must keep
    // passing activations.
    Bitmap col_nz = {true, false, true, false};
    auto on = colOnFromNonZero(col_nz);
    Bitmap expect = {true, true, true, false};
    EXPECT_EQ(on, expect);
}

}  // namespace
}  // namespace sa
}  // namespace regate
