/**
 * @file
 * Tests for the DLRM workload generator: graph structure, AllToAll
 * presence, and the memory/network-bound character the paper relies
 * on (§3).
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "models/dlrm.h"

namespace regate {
namespace models {
namespace {

using graph::CollKind;
using graph::OpKind;

TEST(Dlrm, ConfigsMatchTable1Sizes)
{
    EXPECT_NEAR(dlrmConfig(DlrmModel::S).tableBytes / 1e9, 20.0, 0.1);
    EXPECT_NEAR(dlrmConfig(DlrmModel::M).tableBytes / 1e9, 45.0, 0.1);
    EXPECT_NEAR(dlrmConfig(DlrmModel::L).tableBytes / 1e9, 98.0, 0.1);
    EXPECT_EQ(allDlrmModels().size(), 3u);
}

TEST(Dlrm, GraphHasAllStages)
{
    auto g = dlrmInference(dlrmConfig(DlrmModel::M), 4096, 8);
    g.validate();
    bool has_embedding = false, has_alltoall = false,
         has_interaction = false;
    int gemms = 0;
    for (const auto &op : g.blocks[0].ops) {
        has_embedding |= op.kind == OpKind::Embedding;
        has_alltoall |= op.coll == CollKind::AllToAll;
        has_interaction |= op.name == "interaction";
        gemms += op.kind == OpKind::MatMul ? 1 : 0;
    }
    EXPECT_TRUE(has_embedding);
    EXPECT_TRUE(has_alltoall);
    EXPECT_TRUE(has_interaction);
    // Bottom MLP (3 fcs) + top MLP (5 fcs).
    EXPECT_EQ(gemms, 8);
}

TEST(Dlrm, SingleChipHasNoAllToAll)
{
    auto g = dlrmInference(dlrmConfig(DlrmModel::S), 1024, 1);
    for (const auto &op : g.blocks[0].ops)
        EXPECT_NE(op.kind, OpKind::Collective);
}

TEST(Dlrm, LowArithmeticIntensityRelativeToPrefill)
{
    // DLRM is memory/network-bound (§3): its arithmetic intensity is
    // at least an order of magnitude below a compute-bound LLM
    // prefill graph's.
    auto g = dlrmInference(dlrmConfig(DlrmModel::L), 4096, 8);
    double dlrm_intensity = g.totalFlops() / g.totalHbmBytes();
    EXPECT_LT(dlrm_intensity, 300.0);
}

TEST(Dlrm, AllToAllScalesWithBatchAndDim)
{
    auto small = dlrmInference(dlrmConfig(DlrmModel::S), 1024, 8);
    auto big = dlrmInference(dlrmConfig(DlrmModel::L), 4096, 8);
    EXPECT_GT(big.totalCollectiveBytes(),
              4.0 * small.totalCollectiveBytes());
}

TEST(Dlrm, EmbeddingLookupsCoverGlobalBatch)
{
    const auto &cfg = dlrmConfig(DlrmModel::M);
    auto g = dlrmInference(cfg, 4096, 8);
    for (const auto &op : g.blocks[0].ops) {
        if (op.kind != OpKind::Embedding)
            continue;
        // This chip's table shard serves the global batch.
        EXPECT_DOUBLE_EQ(op.lookups, 4096.0 * cfg.tables / 8 *
                                         cfg.pooling);
    }
}

TEST(Dlrm, GemmRowsAreLocalBatch)
{
    auto g = dlrmInference(dlrmConfig(DlrmModel::S), 4096, 8);
    for (const auto &op : g.blocks[0].ops) {
        if (op.kind == OpKind::MatMul)
            EXPECT_EQ(op.m, 512);  // 4096 / 8 chips.
    }
}

TEST(Dlrm, RejectsBadChips)
{
    EXPECT_THROW(dlrmInference(dlrmConfig(DlrmModel::S), 1024, 0),
                 ConfigError);
}

}  // namespace
}  // namespace models
}  // namespace regate
