/**
 * @file
 * Tests for the lifetime-based SRAM allocator (§4.3): non-overlap of
 * live buffers, lifetime reuse, capacity exhaustion, and the
 * per-segment occupancy the idleness analysis consumes.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "common/prng.h"
#include "common/units.h"
#include "mem/sram_allocator.h"

namespace regate {
namespace mem {
namespace {

using units::KiB;

TEST(Allocator, SequentialPlacement)
{
    SramAllocator a(KiB(64), KiB(4));
    auto b0 = a.allocate(KiB(8), 0, 10, "b0");
    auto b1 = a.allocate(KiB(8), 0, 10, "b1");
    EXPECT_EQ(b0.offset, 0u);
    EXPECT_EQ(b1.offset, KiB(8));
    EXPECT_EQ(a.peakBytes(), KiB(16));
}

TEST(Allocator, ReusesDeadSpace)
{
    SramAllocator a(KiB(64), KiB(4));
    a.allocate(KiB(32), 0, 5, "early");
    // Lifetime disjoint: reuses offset 0.
    auto late = a.allocate(KiB(32), 5, 10, "late");
    EXPECT_EQ(late.offset, 0u);
    EXPECT_EQ(a.peakBytes(), KiB(32));
}

TEST(Allocator, FirstFitFillsGaps)
{
    SramAllocator a(KiB(64), KiB(4));
    a.allocate(KiB(8), 0, 10, "a");      // [0, 8K)
    auto b = a.allocate(KiB(8), 0, 10); // [8K, 16K)
    a.allocate(KiB(8), 0, 10, "c");      // [16K, 24K)
    // b's space is free for a non-overlapping lifetime... but all
    // three are live together, so a new live buffer goes after c.
    auto d = a.allocate(KiB(4), 5, 8, "d");
    EXPECT_EQ(d.offset, KiB(24));
    (void)b;
}

TEST(Allocator, ExhaustionThrows)
{
    SramAllocator a(KiB(16), KiB(4));
    a.allocate(KiB(12), 0, 10);
    EXPECT_THROW(a.allocate(KiB(8), 5, 12), ConfigError);
    // Disjoint lifetime still fits.
    EXPECT_NO_THROW(a.allocate(KiB(16), 10, 20));
}

TEST(Allocator, NonOverlapProperty)
{
    // Randomized: no two buffers with overlapping lifetimes may
    // overlap in address space.
    Prng rng(17);
    SramAllocator a(units::MiB(1), KiB(4));
    for (int i = 0; i < 200; ++i) {
        std::uint64_t start = rng.uniform(0, 50);
        std::uint64_t end = start + 1 + rng.uniform(0, 20);
        std::uint64_t size = KiB(1 + rng.uniform(0, 16));
        try {
            a.allocate(size, start, end);
        } catch (const ConfigError &) {
            // Exhaustion is fine for this property.
        }
    }
    const auto &bufs = a.buffers();
    for (std::size_t i = 0; i < bufs.size(); ++i) {
        for (std::size_t j = i + 1; j < bufs.size(); ++j) {
            const auto &x = bufs[i];
            const auto &y = bufs[j];
            bool lifetime_overlap = x.start < y.end && y.start < x.end;
            bool space_overlap = x.offset < y.offset + y.size &&
                                 y.offset < x.offset + x.size;
            EXPECT_FALSE(lifetime_overlap && space_overlap)
                << x.name << " vs " << y.name;
        }
    }
}

TEST(Allocator, SegmentOccupancy)
{
    SramAllocator a(KiB(16), KiB(4));
    a.allocate(KiB(4), 0, 5, "seg0");
    a.allocate(KiB(8), 3, 9, "seg1-2");

    auto occ = a.segmentOccupancy(10);
    ASSERT_EQ(occ.size(), 4u);
    ASSERT_EQ(occ[0].size(), 1u);
    EXPECT_EQ(occ[0][0], (core::Interval{0, 5}));
    ASSERT_EQ(occ[1].size(), 1u);
    EXPECT_EQ(occ[1][0], (core::Interval{3, 9}));
    EXPECT_TRUE(occ[3].empty());  // Never used: OFF all program.
}

TEST(Allocator, OccupancyMergesAdjacentLifetimes)
{
    SramAllocator a(KiB(16), KiB(4));
    a.allocate(KiB(4), 0, 5, "x");
    a.allocate(KiB(4), 5, 9, "y");  // Same segment, abutting.
    auto occ = a.segmentOccupancy(10);
    ASSERT_EQ(occ[0].size(), 1u);
    EXPECT_EQ(occ[0][0], (core::Interval{0, 9}));
}

TEST(Allocator, OccupancyClampsToHorizon)
{
    SramAllocator a(KiB(16), KiB(4));
    a.allocate(KiB(4), 2, 100, "long");
    auto occ = a.segmentOccupancy(10);
    EXPECT_EQ(occ[0][0], (core::Interval{2, 10}));
}

TEST(Allocator, Validation)
{
    EXPECT_THROW(SramAllocator(KiB(3), KiB(4)), ConfigError);
    SramAllocator a(KiB(16), KiB(4));
    EXPECT_THROW(a.allocate(0, 0, 5), ConfigError);
    EXPECT_THROW(a.allocate(KiB(4), 5, 5), ConfigError);
    EXPECT_THROW(a.allocate(KiB(32), 0, 5), ConfigError);
}

}  // namespace
}  // namespace mem
}  // namespace regate
