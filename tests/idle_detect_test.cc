/**
 * @file
 * Tests for the cycle-driven idle-detection FSM (§4.1).
 */

#include <gtest/gtest.h>

#include "common/error.h"
#include "core/idle_detect.h"

namespace regate {
namespace core {
namespace {

TEST(IdleDetect, StaysActiveUnderLoad)
{
    IdleDetector d(4, 2);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(d.tick(true));
    EXPECT_EQ(d.gatedCycles(), 0u);
    EXPECT_EQ(d.wakeEvents(), 0u);
}

TEST(IdleDetect, GatesAfterWindow)
{
    IdleDetector d(4, 2);
    d.tick(true);
    for (int i = 0; i < 3; ++i) {
        d.tick(false);
        EXPECT_NE(d.state(), IdleDetector::State::Gated) << i;
    }
    d.tick(false);  // 4th idle cycle: gate.
    EXPECT_EQ(d.state(), IdleDetector::State::Gated);
    d.tick(false);
    EXPECT_EQ(d.gatedCycles(), 2u);
}

TEST(IdleDetect, WakeCostsDelay)
{
    IdleDetector d(2, 3);
    d.tick(true);
    for (int i = 0; i < 5; ++i)
        d.tick(false);
    ASSERT_EQ(d.state(), IdleDetector::State::Gated);

    // Access arrives: stalled for 3 cycles, then served.
    EXPECT_FALSE(d.tick(true));
    EXPECT_FALSE(d.tick(true));
    EXPECT_FALSE(d.tick(true));
    EXPECT_TRUE(d.tick(true));
    EXPECT_EQ(d.wakeEvents(), 1u);
    EXPECT_EQ(d.stallCycles(), 3u);
}

TEST(IdleDetect, ZeroWakeDelayServesImmediately)
{
    IdleDetector d(2, 0);
    d.tick(true);
    d.tick(false);
    d.tick(false);
    ASSERT_EQ(d.state(), IdleDetector::State::Gated);
    EXPECT_FALSE(d.tick(false));
    EXPECT_TRUE(d.tick(true));
    EXPECT_EQ(d.wakeEvents(), 1u);
    EXPECT_EQ(d.stallCycles(), 0u);
}

TEST(IdleDetect, AccessResetsWindow)
{
    IdleDetector d(3, 1);
    d.tick(true);
    d.tick(false);
    d.tick(false);
    d.tick(true);  // Reset before window expires.
    d.tick(false);
    d.tick(false);
    EXPECT_NE(d.state(), IdleDetector::State::Gated);
    EXPECT_EQ(d.gatedCycles(), 0u);
}

TEST(IdleDetect, RepeatedGateWakeCycles)
{
    IdleDetector d(2, 1);
    std::uint64_t expected_wakes = 0;
    for (int round = 0; round < 5; ++round) {
        d.tick(true);
        for (int i = 0; i < 6; ++i)
            d.tick(false);
        EXPECT_EQ(d.state(), IdleDetector::State::Gated);
        d.tick(true);   // Trigger wake (stall).
        d.tick(true);   // Served.
        ++expected_wakes;
        EXPECT_EQ(d.wakeEvents(), expected_wakes);
    }
    EXPECT_GT(d.gatedCycles(), 0u);
    EXPECT_EQ(d.totalCycles(), 5u * 9u);
}

TEST(IdleDetect, RejectsZeroWindow)
{
    EXPECT_THROW(IdleDetector(0, 1), ConfigError);
}

}  // namespace
}  // namespace core
}  // namespace regate
