/**
 * @file
 * Unit tests for the common utilities: stats, table printer, PRNG,
 * units, and error macros.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>
#include <string>

#include "common/backoff.h"
#include "common/error.h"
#include "common/prng.h"
#include "common/sha256.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace regate {
namespace {

TEST(Units, BinarySizes)
{
    EXPECT_EQ(units::KiB(4), 4096u);
    EXPECT_EQ(units::MiB(1), 1048576u);
    EXPECT_EQ(units::GiB(1), 1073741824u);
}

TEST(Units, Bandwidth)
{
    EXPECT_DOUBLE_EQ(units::GBps(2.0), 2e9);
    EXPECT_DOUBLE_EQ(units::MHz(700), 7e8);
}

TEST(Units, EnergyConversions)
{
    EXPECT_DOUBLE_EQ(units::pJ(1.0), 1e-12);
    EXPECT_DOUBLE_EQ(units::joulesToKWh(3.6e6), 1.0);
}

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(stats::mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(stats::geomean({1, 4}), 2.0, 1e-12);
    EXPECT_THROW(stats::geomean({1, -1}), ConfigError);
    EXPECT_THROW(stats::geomean({}), ConfigError);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(stats::minOf({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(stats::maxOf({3, 1, 2}), 3.0);
    EXPECT_THROW(stats::minOf({}), ConfigError);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 25), 2.0);
    EXPECT_THROW(stats::percentile(xs, 101), ConfigError);
}

TEST(Stats, R2PerfectCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {2, 4, 6, 8};
    EXPECT_NEAR(stats::r2(xs, ys), 1.0, 1e-12);
}

TEST(Stats, R2Uncorrelated)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {1, -1, 1, -1};
    EXPECT_LT(stats::r2(xs, ys), 0.5);
}

TEST(Stats, R2SizeMismatch)
{
    EXPECT_THROW(stats::r2({1, 2}, {1, 2, 3}), ConfigError);
}

TEST(Stats, WeightedCdf)
{
    auto cdf = stats::weightedCdf({{1.0, 1.0}, {2.0, 3.0}});
    ASSERT_EQ(cdf.size(), 2u);
    EXPECT_DOUBLE_EQ(cdf[0].second, 0.25);
    EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
    EXPECT_DOUBLE_EQ(stats::cdfAt(cdf, 1.5), 0.25);
    EXPECT_DOUBLE_EQ(stats::cdfAt(cdf, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(stats::cdfAt(cdf, 2.0), 1.0);
}

TEST(Stats, WeightedCdfMergesDuplicates)
{
    auto cdf = stats::weightedCdf({{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}});
    ASSERT_EQ(cdf.size(), 2u);
    EXPECT_DOUBLE_EQ(cdf[0].second, 0.5);
}

TEST(Table, AlignsAndCounts)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1.0"});
    t.addSeparator();
    t.addRow({"b", "22.5"});
    EXPECT_EQ(t.rowCount(), 3u);

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.5"), std::string::npos);
}

TEST(Table, RejectsOversizedRows)
{
    TablePrinter t({"one"});
    EXPECT_THROW(t.addRow({"a", "b"}), ConfigError);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(TablePrinter::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.155, 1), "15.5%");
    EXPECT_EQ(TablePrinter::eng(1.5e9, 1), "1.5G");
    EXPECT_EQ(TablePrinter::eng(2500, 1), "2.5K");
    EXPECT_EQ(TablePrinter::eng(0.0025, 1), "2.5m");
    EXPECT_EQ(TablePrinter::eng(2.5e-6, 1), "2.5u");
    EXPECT_EQ(TablePrinter::eng(2.5e-9, 1), "2.5n");
    EXPECT_EQ(TablePrinter::eng(0.0, 1), "0.0");
}

TEST(Prng, Deterministic)
{
    Prng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, UniformBounds)
{
    Prng rng(3);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniform(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        double d = rng.uniform01();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Error, CheckThrowsConfigError)
{
    EXPECT_THROW(REGATE_CHECK(false, "bad thing ", 42), ConfigError);
    EXPECT_NO_THROW(REGATE_CHECK(true, "fine"));
}

TEST(Error, AssertThrowsLogicError)
{
    EXPECT_THROW(REGATE_ASSERT(false, "bug"), LogicError);
}

TEST(Error, MessageContainsDetails)
{
    try {
        REGATE_CHECK(false, "value was ", 7);
        FAIL();
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

// ---- Backoff (common/backoff.h) ----

TEST(Backoff, GrowsExponentiallyToTheCapWithoutJitter)
{
    BackoffPolicy policy;
    policy.initialDelaySec = 1.0;
    policy.maxDelaySec = 8.0;
    policy.multiplier = 2.0;
    policy.jitterFrac = 0;  // Exact delays.
    policy.maxAttempts = 0;
    Backoff backoff(policy, 42);
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 1.0);
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 2.0);
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 4.0);
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 8.0);
    // Capped: an outage of any length cannot grow it further.
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 8.0);
    EXPECT_FALSE(backoff.exhausted());  // 0 = unbounded.
}

TEST(Backoff, JitterIsDeterministicUnderAFixedSeed)
{
    BackoffPolicy policy;  // Defaults include 25% jitter.
    Backoff a(policy, 0x5eed);
    Backoff b(policy, 0x5eed);
    Backoff c(policy, 0x5eed + 1);
    bool diverged = false;
    for (int i = 0; i < 6; ++i) {
        double da = a.nextDelaySec();
        EXPECT_DOUBLE_EQ(da, b.nextDelaySec()) << "step " << i;
        diverged = diverged || da != c.nextDelaySec();
        // Jitter stays inside the advertised band around the
        // capped exponential base.
        double base = std::min(
            policy.initialDelaySec * std::pow(policy.multiplier, i),
            policy.maxDelaySec);
        EXPECT_GE(da, base * (1 - policy.jitterFrac));
        EXPECT_LE(da, base * (1 + policy.jitterFrac));
    }
    // Different seeds de-correlate a fleet's re-dial storms.
    EXPECT_TRUE(diverged);
}

TEST(Backoff, ResetRearmsAndExhaustionCounts)
{
    BackoffPolicy policy;
    policy.initialDelaySec = 0.5;
    policy.maxDelaySec = 4.0;
    policy.jitterFrac = 0;
    policy.maxAttempts = 3;
    Backoff backoff(policy, 7);
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 0.5);
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 1.0);
    EXPECT_EQ(backoff.attempts(), 2);
    EXPECT_FALSE(backoff.exhausted());
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 2.0);
    EXPECT_TRUE(backoff.exhausted());
    // A success rearms the sequence from the initial delay.
    backoff.reset();
    EXPECT_EQ(backoff.attempts(), 0);
    EXPECT_FALSE(backoff.exhausted());
    EXPECT_DOUBLE_EQ(backoff.nextDelaySec(), 0.5);
}

TEST(Backoff, RejectsNonsensePolicies)
{
    auto with = [](auto mutate) {
        BackoffPolicy policy;
        mutate(policy);
        return policy;
    };
    EXPECT_THROW(Backoff(with([](BackoffPolicy &p) {
                             p.initialDelaySec = 0;
                         }),
                         1),
                 ConfigError);
    EXPECT_THROW(Backoff(with([](BackoffPolicy &p) {
                             p.maxDelaySec = 0.1;
                         }),
                         1),
                 ConfigError);
    EXPECT_THROW(Backoff(with([](BackoffPolicy &p) {
                             p.multiplier = 0.5;
                         }),
                         1),
                 ConfigError);
    EXPECT_THROW(Backoff(with([](BackoffPolicy &p) {
                             p.jitterFrac = 1.0;
                         }),
                         1),
                 ConfigError);
}

// ---- SHA-256 / HMAC-SHA256 (common/sha256.h) ----

TEST(Sha256, MatchesTheFipsVectors)
{
    // FIPS 180-4 / NIST CAVP reference digests.
    EXPECT_EQ(sha256Hex(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(sha256Hex("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(sha256Hex("abcdbcdecdefdefgefghfghighijhi"
                        "jkijkljklmklmnlmnomnopnopq"),
              "248d6a61d20638b8e5c026930c3e6039"
              "a33ce45964ff2167f6ecedd419db06c1");
    // Multi-block (> 64 bytes) input exercises the block loop.
    EXPECT_EQ(sha256Hex(std::string(1000, 'a')),
              "41edece42d63e8d9bf515a9ba6932e1c"
              "20cbc9f5a5d134645adb5db1b9737ea3");
}

TEST(Sha256, HmacMatchesRfc4231Vectors)
{
    // RFC 4231 test case 1.
    EXPECT_EQ(hmacSha256Hex(std::string(20, '\x0b'), "Hi There"),
              "b0344c61d8db38535ca8afceaf0bf12b"
              "881dc200c9833da726e9376c2e32cff7");
    // Test case 2: a key shorter than the block size.
    EXPECT_EQ(hmacSha256Hex("Jefe",
                            "what do ya want for nothing?"),
              "5bdcc146bf60754e6a042426089575c7"
              "5a003f089d2739839dec58b964ec3843");
    // Test case 6: a key longer than the block size is hashed
    // first.
    EXPECT_EQ(
        hmacSha256Hex(std::string(131, '\xaa'),
                      "Test Using Larger Than Block-Size Key - "
                      "Hash Key First"),
        "60e431591ee0b67f0d8a26aacbf5b77f"
        "8e0bc6213728c5140546040f0ee37f54");
}

}  // namespace
}  // namespace regate
