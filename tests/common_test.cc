/**
 * @file
 * Unit tests for the common utilities: stats, table printer, PRNG,
 * units, and error macros.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/error.h"
#include "common/prng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace regate {
namespace {

TEST(Units, BinarySizes)
{
    EXPECT_EQ(units::KiB(4), 4096u);
    EXPECT_EQ(units::MiB(1), 1048576u);
    EXPECT_EQ(units::GiB(1), 1073741824u);
}

TEST(Units, Bandwidth)
{
    EXPECT_DOUBLE_EQ(units::GBps(2.0), 2e9);
    EXPECT_DOUBLE_EQ(units::MHz(700), 7e8);
}

TEST(Units, EnergyConversions)
{
    EXPECT_DOUBLE_EQ(units::pJ(1.0), 1e-12);
    EXPECT_DOUBLE_EQ(units::joulesToKWh(3.6e6), 1.0);
}

TEST(Stats, Mean)
{
    EXPECT_DOUBLE_EQ(stats::mean({1, 2, 3}), 2.0);
    EXPECT_DOUBLE_EQ(stats::mean({}), 0.0);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(stats::geomean({1, 4}), 2.0, 1e-12);
    EXPECT_THROW(stats::geomean({1, -1}), ConfigError);
    EXPECT_THROW(stats::geomean({}), ConfigError);
}

TEST(Stats, MinMax)
{
    EXPECT_DOUBLE_EQ(stats::minOf({3, 1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(stats::maxOf({3, 1, 2}), 3.0);
    EXPECT_THROW(stats::minOf({}), ConfigError);
}

TEST(Stats, Percentile)
{
    std::vector<double> xs = {1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 1.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 3.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 5.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 25), 2.0);
    EXPECT_THROW(stats::percentile(xs, 101), ConfigError);
}

TEST(Stats, R2PerfectCorrelation)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {2, 4, 6, 8};
    EXPECT_NEAR(stats::r2(xs, ys), 1.0, 1e-12);
}

TEST(Stats, R2Uncorrelated)
{
    std::vector<double> xs = {1, 2, 3, 4};
    std::vector<double> ys = {1, -1, 1, -1};
    EXPECT_LT(stats::r2(xs, ys), 0.5);
}

TEST(Stats, R2SizeMismatch)
{
    EXPECT_THROW(stats::r2({1, 2}, {1, 2, 3}), ConfigError);
}

TEST(Stats, WeightedCdf)
{
    auto cdf = stats::weightedCdf({{1.0, 1.0}, {2.0, 3.0}});
    ASSERT_EQ(cdf.size(), 2u);
    EXPECT_DOUBLE_EQ(cdf[0].second, 0.25);
    EXPECT_DOUBLE_EQ(cdf[1].second, 1.0);
    EXPECT_DOUBLE_EQ(stats::cdfAt(cdf, 1.5), 0.25);
    EXPECT_DOUBLE_EQ(stats::cdfAt(cdf, 0.5), 0.0);
    EXPECT_DOUBLE_EQ(stats::cdfAt(cdf, 2.0), 1.0);
}

TEST(Stats, WeightedCdfMergesDuplicates)
{
    auto cdf = stats::weightedCdf({{1.0, 1.0}, {1.0, 1.0}, {2.0, 2.0}});
    ASSERT_EQ(cdf.size(), 2u);
    EXPECT_DOUBLE_EQ(cdf[0].second, 0.5);
}

TEST(Table, AlignsAndCounts)
{
    TablePrinter t({"name", "value"});
    t.addRow({"alpha", "1.0"});
    t.addSeparator();
    t.addRow({"b", "22.5"});
    EXPECT_EQ(t.rowCount(), 3u);

    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22.5"), std::string::npos);
}

TEST(Table, RejectsOversizedRows)
{
    TablePrinter t({"one"});
    EXPECT_THROW(t.addRow({"a", "b"}), ConfigError);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(TablePrinter::fmt(1.2345, 2), "1.23");
    EXPECT_EQ(TablePrinter::pct(0.155, 1), "15.5%");
    EXPECT_EQ(TablePrinter::eng(1.5e9, 1), "1.5G");
    EXPECT_EQ(TablePrinter::eng(2500, 1), "2.5K");
    EXPECT_EQ(TablePrinter::eng(0.0025, 1), "2.5m");
    EXPECT_EQ(TablePrinter::eng(2.5e-6, 1), "2.5u");
    EXPECT_EQ(TablePrinter::eng(2.5e-9, 1), "2.5n");
    EXPECT_EQ(TablePrinter::eng(0.0, 1), "0.0");
}

TEST(Prng, Deterministic)
{
    Prng a(7), b(7);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Prng, UniformBounds)
{
    Prng rng(3);
    for (int i = 0; i < 1000; ++i) {
        auto v = rng.uniform(5, 9);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 9u);
        double d = rng.uniform01();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Error, CheckThrowsConfigError)
{
    EXPECT_THROW(REGATE_CHECK(false, "bad thing ", 42), ConfigError);
    EXPECT_NO_THROW(REGATE_CHECK(true, "fine"));
}

TEST(Error, AssertThrowsLogicError)
{
    EXPECT_THROW(REGATE_ASSERT(false, "bug"), LogicError);
}

TEST(Error, MessageContainsDetails)
{
    try {
        REGATE_CHECK(false, "value was ", 7);
        FAIL();
    } catch (const ConfigError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

}  // namespace
}  // namespace regate
