/**
 * @file
 * Integration tests: whole-pipeline runs (model -> compiler ->
 * engine -> policies -> carbon) reproducing the paper's headline
 * qualitative results end to end.
 */

#include <gtest/gtest.h>

#include "carbon/carbon_model.h"
#include "common/stats.h"
#include "compiler/compiler.h"
#include "sim/report.h"

namespace regate {
namespace {

using arch::Component;
using arch::NpuGeneration;
using models::Workload;
using sim::Policy;

TEST(Integration, AverageFullSavingsNearPaper)
{
    // Paper: 15.5% average energy saving across the suite (Fig. 17).
    // Our substrate differs; require the suite average in 10%-30%.
    std::vector<double> savings;
    for (auto w : models::allWorkloads()) {
        auto rep = sim::simulateWorkload(w, NpuGeneration::D);
        savings.push_back(rep.run().savingVsNoPg(Policy::Full));
    }
    double avg = stats::mean(savings);
    EXPECT_GE(avg, 0.10);
    EXPECT_LE(avg, 0.30);
}

TEST(Integration, CompilerAnnotationsReachEngine)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    auto setup = models::table4Setup(Workload::Decode8B);
    auto raw = models::buildGraph(Workload::Decode8B, setup);
    auto compiled = compiler::compileGraph(raw, cfg);

    // Decode GEMMs get VU-mapped; fusion removes vector-op traffic.
    EXPECT_GT(compiled.tiling.vuMappedGemms, 0u);
    EXPECT_GT(compiled.fusion.fusedOps, 0u);
    EXPECT_GT(compiled.fusion.hbmBytesSaved, 0.0);

    sim::Engine engine(cfg);
    auto run = engine.run(compiled.graph, setup.chips);
    EXPECT_GT(run.cycles, 0u);
}

TEST(Integration, FusionReducesEnergy)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    auto setup = models::table4Setup(Workload::Prefill8B);
    auto raw = models::buildGraph(Workload::Prefill8B, setup);

    auto compiled = compiler::compileGraph(raw, cfg);
    graph::OperatorGraph unfused = raw;
    compiler::TilingOptions opts;
    compiler::tileGraph(unfused, cfg, opts);  // Tiling, no fusion.

    sim::Engine engine(cfg);
    auto with_fusion = engine.run(compiled.graph, setup.chips);
    auto without = engine.run(unfused, setup.chips);
    EXPECT_LE(with_fusion.result(Policy::NoPG).energy.busyTotal(),
              without.result(Policy::NoPG).energy.busyTotal());
}

TEST(Integration, GenerationSweepRunsEverywhere)
{
    // Fig. 23: every generation, including the projected NPU-E, runs
    // and saves energy under ReGate-Full.
    for (auto gen : arch::allGenerations()) {
        auto rep = sim::simulateWorkload(Workload::DlrmL, gen);
        EXPECT_GT(rep.run().savingVsNoPg(Policy::Full), 0.05)
            << arch::npuConfig(gen).name;
    }
}

TEST(Integration, NpuELargerUnitsSaveMoreOnDecode)
{
    // §6.5: NPU-E's larger SAs/SRAM are *less* utilized by decode,
    // so gating saves relatively more than on NPU-D.
    auto d = sim::simulateWorkload(Workload::Decode405B,
                                   NpuGeneration::D);
    auto e = sim::simulateWorkload(Workload::Decode405B,
                                   NpuGeneration::E);
    EXPECT_GT(e.run().savingVsNoPg(Policy::Full),
              d.run().savingVsNoPg(Policy::Full) * 0.9);
}

TEST(Integration, LeakageSensitivityMonotonic)
{
    // Fig. 21: savings shrink as gated-state leakage grows, but
    // ReGate-Full keeps saving even at the worst setting.
    auto setup = models::table4Setup(Workload::DlrmL);
    double prev = 1.0;
    for (auto [logic, sleep, off] :
         {std::tuple{0.03, 0.25, 0.002}, std::tuple{0.2, 0.4, 0.1},
          std::tuple{0.6, 0.8, 0.4}}) {
        arch::LeakageRatios r;
        r.logicOff = logic;
        r.sramSleep = sleep;
        r.sramOff = off;
        arch::GatingParams params(r);
        auto rep = sim::simulateWorkload(Workload::DlrmL,
                                         NpuGeneration::D, params,
                                         &setup);
        double saving = rep.run().savingVsNoPg(Policy::Full);
        EXPECT_LT(saving, prev);
        EXPECT_GT(saving, 0.02);
        prev = saving;
    }
}

TEST(Integration, DelaySensitivity)
{
    // Fig. 22: 4x slower gating transitions reduce (but do not
    // eliminate) savings and never break the overhead bound for
    // ReGate-Full.
    auto setup = models::table4Setup(Workload::Decode70B);
    arch::GatingParams fast;
    arch::GatingParams slow;
    slow.setDelayScale(4.0);
    auto f = sim::simulateWorkload(Workload::Decode70B,
                                   NpuGeneration::D, fast, &setup);
    auto s = sim::simulateWorkload(Workload::Decode70B,
                                   NpuGeneration::D, slow, &setup);
    EXPECT_GE(f.run().savingVsNoPg(Policy::Full),
              s.run().savingVsNoPg(Policy::Full) - 1e-9);
    EXPECT_LE(s.run().result(Policy::Full).perfOverhead, 0.01);
}

TEST(Integration, CarbonHeadline)
{
    // Fig. 24 band: 31.1%-62.9% operational carbon reduction. Allow
    // a wider envelope for the substituted substrate.
    std::vector<double> reductions;
    for (auto w : {Workload::Train405B, Workload::Prefill405B,
                   Workload::Decode405B, Workload::DlrmL,
                   Workload::DiTXL}) {
        auto rep = sim::simulateWorkload(w, NpuGeneration::D);
        reductions.push_back(
            carbon::operationalCarbonReduction(rep, Policy::Full));
    }
    EXPECT_GE(stats::minOf(reductions), 0.15);
    EXPECT_LE(stats::maxOf(reductions), 0.70);
    EXPECT_GE(stats::mean(reductions), 0.25);
}

TEST(Integration, SimulatorInternalValidationR2)
{
    // Fig. 16-style check: per-operator durations predicted by two
    // independent paths (engine op records vs a re-simulation)
    // correlate perfectly; and SA analytical matches cycle-accurate
    // elsewhere (sa_property_test).
    auto rep = sim::simulateWorkload(Workload::Prefill8B,
                                     NpuGeneration::D);
    std::vector<double> xs, ys;
    for (const auto &rec : rep.run().opRecords) {
        xs.push_back(static_cast<double>(rec.duration()));
    }
    auto rep2 = sim::simulateWorkload(Workload::Prefill8B,
                                      NpuGeneration::D);
    for (const auto &rec : rep2.run().opRecords)
        ys.push_back(static_cast<double>(rec.duration()));
    ASSERT_EQ(xs.size(), ys.size());
    EXPECT_GT(stats::r2(xs, ys), 0.999);
}

}  // namespace
}  // namespace regate
