/**
 * @file
 * Tests for the HBM timing model and the DMA engine.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "common/units.h"
#include "mem/dma.h"
#include "mem/hbm.h"

namespace regate {
namespace mem {
namespace {

using arch::NpuGeneration;

TEST(Hbm, TransferTimeModel)
{
    HbmModel hbm(arch::npuConfig(NpuGeneration::D));
    EXPECT_DOUBLE_EQ(hbm.transferSeconds(0), 0.0);
    // Latency floor for small transfers.
    EXPECT_GE(hbm.transferSeconds(64), hbm.latency());
    // Large transfers approach bandwidth-limited time.
    double t = hbm.transferSeconds(units::GiB(1));
    double ideal = static_cast<double>(units::GiB(1)) / hbm.bandwidth();
    EXPECT_NEAR(t, ideal, hbm.latency() * 2);
}

TEST(Hbm, BandwidthBelowPeak)
{
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    HbmModel hbm(cfg);
    EXPECT_LT(hbm.bandwidth(), cfg.hbmBandwidth);
    EXPECT_GT(hbm.bandwidth(), 0.8 * cfg.hbmBandwidth);
}

TEST(Hbm, CyclesRoundUp)
{
    HbmModel hbm(arch::npuConfig(NpuGeneration::D));
    EXPECT_GT(hbm.transferCycles(1), 0u);
}

TEST(Hbm, FasterGenerationsMoveDataFaster)
{
    HbmModel a(arch::npuConfig(NpuGeneration::A));
    HbmModel e(arch::npuConfig(NpuGeneration::E));
    EXPECT_GT(a.transferSeconds(units::MiB(64)),
              e.transferSeconds(units::MiB(64)));
}

TEST(Dma, SingleChannelSerializes)
{
    HbmModel hbm(arch::npuConfig(NpuGeneration::D));
    DmaEngine dma(hbm, 1);
    Cycles c1 = dma.issue(units::MiB(4), DmaTarget::Hbm,
                          DmaTarget::Sram, 0);
    Cycles c2 = dma.issue(units::MiB(4), DmaTarget::Hbm,
                          DmaTarget::Sram, 0);
    EXPECT_GT(c2, c1);
    EXPECT_EQ(dma.records()[1].start, c1);
    EXPECT_EQ(dma.drainCycle(), c2);
}

TEST(Dma, ChannelsOverlap)
{
    HbmModel hbm(arch::npuConfig(NpuGeneration::D));
    DmaEngine dma(hbm, 4);
    Cycles c1 = dma.issue(units::MiB(4), DmaTarget::Hbm,
                          DmaTarget::Sram, 0);
    Cycles c2 = dma.issue(units::MiB(4), DmaTarget::Sram,
                          DmaTarget::Hbm, 0);
    EXPECT_EQ(c1, c2);  // Parallel channels.
}

TEST(Dma, HbmBusyIntervalsMerge)
{
    HbmModel hbm(arch::npuConfig(NpuGeneration::D));
    DmaEngine dma(hbm, 1);
    dma.issue(units::MiB(1), DmaTarget::Hbm, DmaTarget::Sram, 0);
    Cycles end = dma.issue(units::MiB(1), DmaTarget::Hbm,
                           DmaTarget::Sram, 0);
    auto busy = dma.hbmBusyIntervals();
    ASSERT_EQ(busy.size(), 1u);  // Back-to-back copies merge.
    EXPECT_EQ(busy[0].start, 0u);
    EXPECT_EQ(busy[0].end, end);
}

TEST(Dma, RemoteCopiesDontTouchHbm)
{
    HbmModel hbm(arch::npuConfig(NpuGeneration::D));
    DmaEngine dma(hbm, 1);
    dma.issue(units::MiB(1), DmaTarget::Sram, DmaTarget::RemoteIci, 0);
    EXPECT_TRUE(dma.hbmBusyIntervals().empty());
}

TEST(Dma, Validation)
{
    HbmModel hbm(arch::npuConfig(NpuGeneration::D));
    EXPECT_THROW(DmaEngine(hbm, 0), ConfigError);
    DmaEngine dma(hbm, 1);
    EXPECT_THROW(
        dma.issue(0, DmaTarget::Hbm, DmaTarget::Sram, 0),
        ConfigError);
    EXPECT_THROW(
        dma.issue(64, DmaTarget::Hbm, DmaTarget::Hbm, 0),
        ConfigError);
}

}  // namespace
}  // namespace mem
}  // namespace regate
