/**
 * @file
 * Tests for the area/power/energy models, including the paper's §3
 * per-component static-power bands and the §4.4 area-overhead claim.
 */

#include <gtest/gtest.h>

#include "energy/area_model.h"
#include "energy/energy_breakdown.h"
#include "energy/power_model.h"

namespace regate {
namespace energy {
namespace {

using arch::Component;
using arch::NpuGeneration;

TEST(AreaModel, ComponentAreasPositive)
{
    for (auto gen : arch::allGenerations()) {
        AreaModel area(arch::npuConfig(gen));
        for (auto c : arch::kAllComponents)
            EXPECT_GT(area.baseline().mm2[c], 0.0)
                << arch::componentName(c);
        EXPECT_GT(area.baseline().total(), 50.0);   // A real die.
        EXPECT_LT(area.baseline().total(), 1000.0); // Not a wafer.
    }
}

TEST(AreaModel, GatingOverheadMatchesPaperClaim)
{
    // §4.4: ReGate adds < ~3.3% chip area on a TPUv4i-class chip.
    AreaModel area(arch::npuConfig(NpuGeneration::D));
    EXPECT_GT(area.gatingOverheadFraction(), 0.01);
    EXPECT_LT(area.gatingOverheadFraction(), 0.045);
}

TEST(AreaModel, NewerNodesDensify)
{
    AreaModel a(arch::npuConfig(NpuGeneration::A));
    AreaModel d(arch::npuConfig(NpuGeneration::D));
    // NPU-D has 4x the SAs of NPU-A but a denser node: per-SA area
    // must shrink.
    EXPECT_LT(d.saArea(), a.saArea());
    EXPECT_LT(d.peArea(), a.peArea());
}

TEST(PowerModel, StaticSharesWithinPaperBands)
{
    // §3 bands (averages over generations/workloads); we check the
    // NPU-D chip-level shares land inside them.
    PowerModel p(arch::npuConfig(NpuGeneration::D));
    double total = p.totalStaticPower();
    auto share = [&](Component c) { return p.staticPower(c) / total; };

    EXPECT_GE(share(Component::Sa), 0.08);    // 8%-14%
    EXPECT_LE(share(Component::Sa), 0.14);
    EXPECT_GE(share(Component::Vu), 0.019);   // 1.9%-5.6%
    EXPECT_LE(share(Component::Vu), 0.056);
    EXPECT_GE(share(Component::Sram), 0.154); // 15.4%-24.4%
    EXPECT_LE(share(Component::Sram), 0.244);
    EXPECT_GE(share(Component::Hbm), 0.09);   // 9.0%-22.4%
    EXPECT_LE(share(Component::Hbm), 0.224);
    EXPECT_GE(share(Component::Ici), 0.053);  // 5.3%-12.0%
    EXPECT_LE(share(Component::Ici), 0.12);
    EXPECT_GE(share(Component::Other), 0.391);// 39.1%-45.8%
    EXPECT_LE(share(Component::Other), 0.458);
}

TEST(PowerModel, StaticPowerPlausible)
{
    // Total static power should be a two-to-low-three-digit wattage.
    for (auto gen : arch::allGenerations()) {
        PowerModel p(arch::npuConfig(gen));
        EXPECT_GT(p.totalStaticPower(), 30.0);
        EXPECT_LT(p.totalStaticPower(), 400.0);
    }
}

TEST(PowerModel, UnitPowersConsistent)
{
    PowerModel p(arch::npuConfig(NpuGeneration::D));
    const auto &cfg = arch::npuConfig(NpuGeneration::D);
    EXPECT_NEAR(p.saStaticPower() * cfg.numSa,
                p.staticPower(Component::Sa), 1e-9);
    EXPECT_NEAR(p.peStaticPower() * cfg.saWidth * cfg.saWidth,
                p.saStaticPower(), 1e-9);
    EXPECT_NEAR(p.vuStaticPower() * cfg.numVu,
                p.staticPower(Component::Vu), 1e-9);
    EXPECT_NEAR(p.sramSegmentStaticPower() * cfg.sramSegments(),
                p.staticPower(Component::Sram), 1e-6);
}

TEST(PowerModel, DynamicEnergyScalesWithWork)
{
    PowerModel p(arch::npuConfig(NpuGeneration::D));
    WorkCounters w;
    w.macs = 1e12;
    w.hbmBytes = 1e9;
    auto e1 = p.dynamicEnergy(w);
    w.macs *= 2;
    auto e2 = p.dynamicEnergy(w);
    EXPECT_NEAR(e2[Component::Sa], 2 * e1[Component::Sa], 1e-9);
    EXPECT_DOUBLE_EQ(e2[Component::Hbm], e1[Component::Hbm]);
    EXPECT_GT(e1[Component::Other], 0.0);  // Control/clock overhead.
}

TEST(PowerModel, NewerNodesMoreEfficient)
{
    // FLOPs per watt of peak-compute dynamic power must improve
    // A -> D (Fig. 2 trend driver).
    auto flops_per_watt = [](NpuGeneration gen) {
        const auto &cfg = arch::npuConfig(gen);
        PowerModel p(cfg);
        WorkCounters w;
        w.macs = cfg.peakMacs();  // One second at full tilt.
        double watts =
            p.dynamicEnergy(w).sum() + p.totalStaticPower();
        return cfg.peakFlops() / watts;
    };
    EXPECT_GT(flops_per_watt(NpuGeneration::B),
              flops_per_watt(NpuGeneration::A) * 0.99);
    EXPECT_GT(flops_per_watt(NpuGeneration::D),
              flops_per_watt(NpuGeneration::A) * 1.5);
}

TEST(WorkCounters, Accumulate)
{
    WorkCounters a, b;
    a.macs = 1;
    b.macs = 2;
    b.vuOps = 3;
    a += b;
    EXPECT_DOUBLE_EQ(a.macs, 3.0);
    EXPECT_DOUBLE_EQ(a.vuOps, 3.0);
}

TEST(EnergyBreakdown, SharesAndScaling)
{
    EnergyBreakdown e;
    e.staticJ[Component::Sa] = 30;
    e.staticJ[Component::Sram] = 10;
    e.dynamicJ[Component::Sa] = 60;
    e.idleJ = 100;

    EXPECT_DOUBLE_EQ(e.busyTotal(), 100.0);
    EXPECT_DOUBLE_EQ(e.total(), 200.0);
    EXPECT_DOUBLE_EQ(e.staticShareBusy(), 0.4);
    EXPECT_DOUBLE_EQ(e.staticShare(Component::Sa), 0.75);

    auto s = e.scaled(0.5);
    EXPECT_DOUBLE_EQ(s.busyTotal(), 50.0);
    EXPECT_DOUBLE_EQ(s.idleJ, 50.0);

    EnergyBreakdown sum = e;
    sum += e;
    EXPECT_DOUBLE_EQ(sum.total(), 400.0);
}

}  // namespace
}  // namespace energy
}  // namespace regate
