#!/usr/bin/env python3
"""End-to-end check of the sharded sweep CLI (registered as a ctest).

For each grid-shaped binary under test (fig02, fig21, table4 — one
run-path sweep, one per-case-params sweep, one SLO-search sweep):

1. capture the unsharded stdout (the correctness reference),
2. run N shards (`--shard i/N --out ...`) in separate processes,
3. merge the shard files with tools/merge_shards.py,
4. render the merged results (`--from merged.json`) and require the
   stdout to be byte-identical to the reference,
5. require the merged document to be byte-identical to the
   degenerate single-shard document (`--shard 0/1`).

This is the same split-run-merge-compare loop the CI shard matrix
runs across jobs, kept runnable locally in one command.

On top of the loop, this also pins the CLI/format contracts the
orchestrator builds on:

- the shared `--shard i/N` validator: malformed specs, N <= 0, and
  i outside [0, N) exit with the usage error (code 2) in every
  binary, instead of per-binary behavior;
- the `--cases` planning query prints a bare case count;
- the `--worker` handshake emits the documented start/done protocol
  lines, per-case heartbeat lines (monotone k, ending at n/n), and
  the reported file_digest matches the artifact's bytes;
- `merge_shards.py --check` verifies digests and coverage without
  writing; a tampered byte fails with a digest mismatch; shard sets
  mixing format versions are rejected with a precise message.
"""

import argparse
import re
import subprocess
import sys
import tempfile
from pathlib import Path

BINARIES = [
    "fig02_energy_efficiency",
    "fig21_sens_leakage",
    "table4_slo_configs",
]
SHARDS = 3

BAD_SHARD_SPECS = [
    "abc", "1", "1/", "/4", "1/2/3", "1.5/4",  # malformed
    "0/0", "1/0", "0/-2",                      # N <= 0
    "-1/4",                                    # i < 0
    "4/4", "5/4",                              # i >= N
]

FNV_OFFSET = 0xcbf29ce484222325
FNV_PRIME = 0x100000001b3
FNV_MASK = (1 << 64) - 1


def fnv1a64_hex(data):
    h = FNV_OFFSET
    for byte in data:
        h = ((h ^ byte) * FNV_PRIME) & FNV_MASK
    return format(h, "016x")


def run(cmd, **kwargs):
    proc = subprocess.run(cmd, capture_output=True, **kwargs)
    if proc.returncode != 0:
        sys.exit(f"command failed ({proc.returncode}): "
                 f"{' '.join(map(str, cmd))}\n"
                 f"{proc.stderr.decode(errors='replace')}")
    return proc.stdout


def expect_failure(cmd, code, needle):
    proc = subprocess.run(cmd, capture_output=True)
    if proc.returncode != code:
        sys.exit(f"expected exit {code} from "
                 f"{' '.join(map(str, cmd))}, got {proc.returncode}")
    stderr = proc.stderr.decode(errors="replace")
    if needle not in stderr:
        sys.exit(f"stderr of {' '.join(map(str, cmd))} lacks "
                 f"'{needle}':\n{stderr}")


def check_shard_spec_validation(binary):
    """Every bad spec takes the shared usage-error path (exit 2)."""
    for spec in BAD_SHARD_SPECS:
        expect_failure([binary, "--shard", spec, "--out", "/x.json"],
                       2, "usage:")
    expect_failure([binary, "--shard"], 2, "usage:")
    expect_failure([binary, "--shard", "0/2"], 2, "usage:")
    expect_failure([binary, "--out", "x.json"], 2, "usage:")
    expect_failure([binary, "--worker"], 2, "usage:")
    expect_failure([binary, "--cases", "--shard", "0/2",
                    "--out", "x.json"], 2, "usage:")
    print(f"{binary.name}: bad shard specs all exit with the "
          "shared usage error")


def check_worker_handshake(binary, tmp):
    """`--cases` and the `--worker` protocol lines."""
    cases_out = run([binary, "--cases"]).decode()
    if not cases_out.strip().isdigit():
        sys.exit(f"{binary.name}: --cases printed "
                 f"{cases_out!r}, not a bare case count")
    cases = int(cases_out)

    out = tmp / f"{binary.name}_worker.json"
    stdout = run([binary, "--worker", "--shard", f"0/{cases}",
                  "--out", str(out)]).decode()
    start = re.search(
        r"^@regate-worker v1 start kind=(run|search) "
        r"shard=0/\d+ cases=(\d+) range=0\.\.\d+$",
        stdout, re.M)
    done = re.search(
        r"^@regate-worker v1 done out=(\S+) bytes=(\d+) "
        r"file_digest=([0-9a-f]{16})$",
        stdout, re.M)
    if not start or not done:
        sys.exit(f"{binary.name}: worker protocol lines missing "
                 f"from stdout:\n{stdout}")
    if int(start.group(2)) != cases:
        sys.exit(f"{binary.name}: worker start line reports "
                 f"{start.group(2)} cases, --cases said {cases}")
    content = out.read_bytes()
    if int(done.group(2)) != len(content):
        sys.exit(f"{binary.name}: worker reported {done.group(2)} "
                 f"bytes, artifact has {len(content)}")
    if fnv1a64_hex(content) != done.group(3):
        sys.exit(f"{binary.name}: worker-reported file_digest does "
                 "not match the artifact bytes")

    # Per-case heartbeats: a multi-case shard must tick once per
    # completed case — monotone counts ending exactly at n/n, all
    # before the done line (the orchestrator's stall timeout
    # measures the gaps between these lines).
    shard_out = tmp / f"{binary.name}_worker_hb.json"
    hb_stdout = run([binary, "--worker", "--shard", "0/2",
                     "--out", str(shard_out)]).decode()
    beats = re.findall(r"^@regate-worker v1 case (\d+)/(\d+)$",
                       hb_stdout, re.M)
    # shardRange floor arithmetic: shard 0 of 2 covers [0, cases//2).
    shard_cases = cases // 2
    if len(beats) != shard_cases:
        sys.exit(f"{binary.name}: expected {shard_cases} heartbeat "
                 f"lines for shard 0/2, saw {len(beats)}:\n"
                 f"{hb_stdout}")
    counts = [int(k) for k, _ in beats]
    # Strict contract: exactly 1..n, no duplicate or skipped ticks
    # (the runner serializes count++ with the emission).
    if counts != list(range(1, shard_cases + 1)) or \
            any(int(n) != shard_cases for _, n in beats):
        sys.exit(f"{binary.name}: heartbeat counts are not the "
                 f"strict walk 1..{shard_cases}:\n{hb_stdout}")
    if hb_stdout.index("@regate-worker v1 done") < \
            hb_stdout.rindex("@regate-worker v1 case"):
        sys.exit(f"{binary.name}: heartbeat after the done line:\n"
                 f"{hb_stdout}")
    print(f"{binary.name}: --cases, --worker handshake, and "
          f"{shard_cases} per-case heartbeats OK ({cases} cases)")


def check_merge_integrity(merge_tool, shard_files, tmp):
    """--check, digest tamper rejection, mixed-version rejection."""
    shard_args = [str(p) for p in shard_files]
    run([sys.executable, str(merge_tool), "--check"] + shard_args)

    # Flip one payload digit: --check must name a digest mismatch.
    text = shard_files[0].read_text()
    at = text.index('"cycles":') + len('"cycles":')
    digit = text[at]
    tampered = tmp / "tampered_shard.json"
    tampered.write_text(text[:at] +
                        ("1" if digit == "9" else chr(ord(digit) + 1))
                        + text[at + 1:])
    expect_failure([sys.executable, str(merge_tool), "--check",
                    str(tampered)] + shard_args[1:],
                   1, "digest mismatch")

    # A version-1-looking shard among v2 shards: precise message.
    old = tmp / "old_shard.json"
    old.write_text(text.replace('{"regate_shard":2,',
                                '{"regate_shard":1,', 1))
    expect_failure([sys.executable, str(merge_tool), "--check",
                    str(old)] + shard_args[1:],
                   1, "multiple format versions")
    expect_failure([sys.executable, str(merge_tool), "--check",
                    str(old)],
                   1, "unsupported shard format")
    print("merge_shards.py: --check, digest tamper, and "
          "mixed-version rejection OK")


def check_binary(binary, merge_tool, tmp):
    reference = run([binary])

    shard_files = []
    for i in range(SHARDS):
        out = tmp / f"{binary.name}_shard_{i}.json"
        run([binary, "--shard", f"{i}/{SHARDS}", "--out", str(out)])
        shard_files.append(out)

    merged = tmp / f"{binary.name}_merged.json"
    # Reverse order on purpose: the merge must not care.
    run([sys.executable, str(merge_tool), "--out", str(merged)]
        + [str(p) for p in reversed(shard_files)])

    rendered = run([binary, "--from", str(merged)])
    if rendered != reference:
        sys.exit(f"{binary.name}: merged render differs from the "
                 "unsharded run")

    single = tmp / f"{binary.name}_single.json"
    run([binary, "--shard", "0/1", "--out", str(single)])
    if merged.read_bytes() != single.read_bytes():
        sys.exit(f"{binary.name}: merged document differs from the "
                 "single-shard document")
    print(f"{binary.name}: {SHARDS}-shard merge byte-identical "
          "(render and document)")
    return shard_files


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bin-dir", required=True,
                    help="directory holding the figure binaries")
    ap.add_argument("--merge-tool", required=True,
                    help="path to tools/merge_shards.py")
    args = ap.parse_args()

    bin_dir = Path(args.bin_dir)
    merge_tool = Path(args.merge_tool)
    with tempfile.TemporaryDirectory() as tmpdir:
        tmp = Path(tmpdir)
        first_shards = None
        for name in BINARIES:
            binary = bin_dir / name
            if not binary.exists():
                sys.exit(f"missing binary {binary}")
            shards = check_binary(binary, merge_tool, tmp)
            if first_shards is None:
                first_shards = shards
        check_shard_spec_validation(bin_dir / BINARIES[1])
        check_worker_handshake(bin_dir / BINARIES[1], tmp)
        check_merge_integrity(merge_tool, first_shards, tmp)
    return 0


if __name__ == "__main__":
    sys.exit(main())
