#!/usr/bin/env python3
"""End-to-end check of the sharded sweep CLI (registered as a ctest).

For each grid-shaped binary under test (fig02, fig21, table4 — one
run-path sweep, one per-case-params sweep, one SLO-search sweep):

1. capture the unsharded stdout (the correctness reference),
2. run N shards (`--shard i/N --out ...`) in separate processes,
3. merge the shard files with tools/merge_shards.py,
4. render the merged results (`--from merged.json`) and require the
   stdout to be byte-identical to the reference,
5. require the merged document to be byte-identical to the
   degenerate single-shard document (`--shard 0/1`).

This is the same split-run-merge-compare loop the CI shard matrix
runs across jobs, kept runnable locally in one command.
"""

import argparse
import subprocess
import sys
import tempfile
from pathlib import Path

BINARIES = [
    "fig02_energy_efficiency",
    "fig21_sens_leakage",
    "table4_slo_configs",
]
SHARDS = 3


def run(cmd, **kwargs):
    proc = subprocess.run(cmd, capture_output=True, **kwargs)
    if proc.returncode != 0:
        sys.exit(f"command failed ({proc.returncode}): "
                 f"{' '.join(map(str, cmd))}\n"
                 f"{proc.stderr.decode(errors='replace')}")
    return proc.stdout


def check_binary(binary, merge_tool, tmp):
    reference = run([binary])

    shard_files = []
    for i in range(SHARDS):
        out = tmp / f"{binary.name}_shard_{i}.json"
        run([binary, "--shard", f"{i}/{SHARDS}", "--out", str(out)])
        shard_files.append(out)

    merged = tmp / f"{binary.name}_merged.json"
    # Reverse order on purpose: the merge must not care.
    run([sys.executable, str(merge_tool), "--out", str(merged)]
        + [str(p) for p in reversed(shard_files)])

    rendered = run([binary, "--from", str(merged)])
    if rendered != reference:
        sys.exit(f"{binary.name}: merged render differs from the "
                 "unsharded run")

    single = tmp / f"{binary.name}_single.json"
    run([binary, "--shard", "0/1", "--out", str(single)])
    if merged.read_bytes() != single.read_bytes():
        sys.exit(f"{binary.name}: merged document differs from the "
                 "single-shard document")
    print(f"{binary.name}: {SHARDS}-shard merge byte-identical "
          "(render and document)")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--bin-dir", required=True,
                    help="directory holding the figure binaries")
    ap.add_argument("--merge-tool", required=True,
                    help="path to tools/merge_shards.py")
    args = ap.parse_args()

    bin_dir = Path(args.bin_dir)
    merge_tool = Path(args.merge_tool)
    with tempfile.TemporaryDirectory() as tmpdir:
        for name in BINARIES:
            binary = bin_dir / name
            if not binary.exists():
                sys.exit(f"missing binary {binary}")
            check_binary(binary, merge_tool, Path(tmpdir))
    return 0


if __name__ == "__main__":
    sys.exit(main())
