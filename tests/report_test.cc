/**
 * @file
 * Tests for the reporting facade: duty-cycle/PUE accounting, idle
 * power per policy, and Fig. 2/3 metrics.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "sim/report.h"

namespace regate {
namespace sim {
namespace {

using arch::NpuGeneration;
using models::Workload;

TEST(Report, IdlePowerOrdering)
{
    energy::PowerModel power(arch::npuConfig(NpuGeneration::D));
    arch::GatingParams params;
    double nopg = idleStaticPower(power, params, Policy::NoPG);
    double base = idleStaticPower(power, params, Policy::Base);
    double full = idleStaticPower(power, params, Policy::Full);
    double ideal = idleStaticPower(power, params, Policy::Ideal);

    EXPECT_GT(nopg, base);
    EXPECT_GT(base, full);
    EXPECT_GT(full, ideal);
    // Ideal still pays "Other" (never gated).
    EXPECT_DOUBLE_EQ(ideal,
                     power.staticPower(arch::Component::Other));
    // NoPG idle power == full chip static power.
    EXPECT_DOUBLE_EQ(nopg, power.totalStaticPower());
}

TEST(Report, IdleShareInPaperBand)
{
    // §3: the idle portion is 17%-32% of total energy at 60% duty
    // cycle without power gating.
    auto rep = simulateWorkload(Workload::Prefill8B, NpuGeneration::D);
    double share = rep.idleShare(Policy::NoPG);
    EXPECT_GE(share, 0.15);
    EXPECT_LE(share, 0.35);
}

TEST(Report, TotalEnergyIncludesIdleAndPue)
{
    auto rep = simulateWorkload(Workload::DlrmS, NpuGeneration::D);
    FleetParams fleet;
    double busy = rep.podBusyEnergy(Policy::NoPG);
    double total = rep.podTotalEnergy(Policy::NoPG, fleet);
    EXPECT_GT(total, busy * fleet.pue);

    FleetParams always_on;
    always_on.dutyCycle = 1.0;
    EXPECT_NEAR(rep.podTotalEnergy(Policy::NoPG, always_on),
                busy * always_on.pue, busy * 0.01);
}

TEST(Report, EnergyPerUnitDecreasesWithGating)
{
    auto rep = simulateWorkload(Workload::DlrmM, NpuGeneration::D);
    EXPECT_LT(rep.energyPerUnit(Policy::Full),
              rep.energyPerUnit(Policy::NoPG));
}

TEST(Report, NewerGenerationsMoreEfficient)
{
    // Fig. 2 trend: NPU-D beats NPU-A on energy per token.
    auto a = simulateWorkload(Workload::Prefill8B, NpuGeneration::A);
    auto d = simulateWorkload(Workload::Prefill8B, NpuGeneration::D);
    EXPECT_LT(d.energyPerUnit(Policy::NoPG),
              a.energyPerUnit(Policy::NoPG));
}

TEST(Report, SetupOverrideRespected)
{
    models::RunSetup setup;
    setup.chips = 1;
    setup.batch = 2;
    setup.par = {1, 1, 1};
    auto rep = simulateWorkload(Workload::Prefill8B, NpuGeneration::D,
                                {}, &setup);
    EXPECT_EQ(rep.setup.chips, 1);
    EXPECT_DOUBLE_EQ(rep.units, 2.0 * models::kPrefillSeqLen);
}

TEST(Report, InvalidFleetParamsRejected)
{
    auto rep = simulateWorkload(Workload::DlrmS, NpuGeneration::D);
    FleetParams bad;
    bad.dutyCycle = 0.0;
    EXPECT_THROW(rep.idleSeconds(Policy::NoPG, bad), ConfigError);
}

}  // namespace
}  // namespace sim
}  // namespace regate
