/**
 * @file
 * Tests for the workload registry and Table 4 configurations.
 */

#include <gtest/gtest.h>

#include "models/workload.h"

namespace regate {
namespace models {
namespace {

using arch::NpuGeneration;

TEST(Workload, RegistryCoversPaperSuite)
{
    EXPECT_EQ(allWorkloads().size(), 17u);
    EXPECT_EQ(workloadsOf(WorkloadFamily::LlmTraining).size(), 4u);
    EXPECT_EQ(workloadsOf(WorkloadFamily::LlmPrefill).size(), 4u);
    EXPECT_EQ(workloadsOf(WorkloadFamily::LlmDecode).size(), 4u);
    EXPECT_EQ(workloadsOf(WorkloadFamily::DlrmInference).size(), 3u);
    EXPECT_EQ(workloadsOf(WorkloadFamily::StableDiffusion).size(), 2u);
}

TEST(Workload, Table4Verbatim)
{
    auto t = table4Setup(Workload::Train405B);
    EXPECT_EQ(t.chips, 16);
    EXPECT_EQ(t.batch, 32);

    auto d = table4Setup(Workload::Decode70B);
    EXPECT_EQ(d.chips, 128);
    EXPECT_EQ(d.batch, 4096);

    auto r = table4Setup(Workload::DlrmL);
    EXPECT_EQ(r.chips, 8);
    EXPECT_EQ(r.batch, 4096);

    auto s = table4Setup(Workload::Gligen);
    EXPECT_EQ(s.chips, 64);
    EXPECT_EQ(s.batch, 256);
}

TEST(Workload, ParallelismConsistent)
{
    for (auto w : allWorkloads()) {
        auto s = table4Setup(w);
        EXPECT_EQ(s.par.chips(), s.chips) << workloadName(w);
        EXPECT_LE(s.par.dp, s.batch) << workloadName(w);
    }
}

TEST(Workload, UnitsPerRun)
{
    EXPECT_DOUBLE_EQ(
        unitsPerRun(Workload::Train8B, table4Setup(Workload::Train8B)),
        1.0);
    EXPECT_DOUBLE_EQ(unitsPerRun(Workload::Prefill8B,
                                 table4Setup(Workload::Prefill8B)),
                     4.0 * kPrefillSeqLen);
    EXPECT_DOUBLE_EQ(unitsPerRun(Workload::Decode8B,
                                 table4Setup(Workload::Decode8B)),
                     8.0 * kDecodeOutLen);
    EXPECT_DOUBLE_EQ(
        unitsPerRun(Workload::DlrmS, table4Setup(Workload::DlrmS)),
        4096.0);
}

TEST(Workload, DefaultSetupScalesForSmallHbm)
{
    // 405B weights (810 GB bf16) cannot fit 16 GB NPU-A chips at the
    // Table 4 chip count: the setup must grow the pod.
    auto d = defaultSetup(Workload::Prefill405B, NpuGeneration::D);
    auto a = defaultSetup(Workload::Prefill405B, NpuGeneration::A);
    EXPECT_GT(a.chips, d.chips / 256 * 2);
    EXPECT_GE(static_cast<double>(a.chips) *
                  arch::npuConfig(NpuGeneration::A).hbmBytes * 0.85,
              modelStateBytes(Workload::Prefill405B));
}

TEST(Workload, BiggerHbmNeverNeedsMoreChips)
{
    for (auto w : allWorkloads()) {
        auto a = defaultSetup(w, NpuGeneration::A);
        auto e = defaultSetup(w, NpuGeneration::E);
        EXPECT_GE(a.chips, e.chips) << workloadName(w);
    }
}

TEST(Workload, BuildGraphAllWorkloads)
{
    for (auto w : allWorkloads()) {
        auto setup = table4Setup(w);
        auto g = buildGraph(w, setup);
        EXPECT_NO_THROW(g.validate()) << workloadName(w);
        EXPECT_GT(g.opCount(), 0u) << workloadName(w);
    }
}

TEST(Workload, NamesAndUnits)
{
    EXPECT_EQ(workloadName(Workload::Prefill70B),
              "Llama3-70B-Prefill");
    EXPECT_EQ(workloadName(Workload::DlrmM), "DLRM-M");
    EXPECT_EQ(workUnitName(workUnitOf(Workload::DiTXL)), "Image");
    EXPECT_EQ(workUnitName(workUnitOf(Workload::Train70B)), "Iter");
    EXPECT_EQ(workloadFamilyName(WorkloadFamily::LlmDecode),
              "LLM Decode");
}

TEST(Workload, ModelStateBytesSensible)
{
    // Decode state includes the KV cache: bigger than prefill state.
    EXPECT_GT(modelStateBytes(Workload::Decode70B),
              modelStateBytes(Workload::Prefill70B));
    // DLRM state is the embedding tables.
    EXPECT_NEAR(modelStateBytes(Workload::DlrmL), 98e9, 1e9);
}

}  // namespace
}  // namespace models
}  // namespace regate
