/**
 * @file
 * Cross-validation between the two modeling paths: the instruction-
 * level VLIW core (isa/) executing compiler-instrumented kernels must
 * agree with the analytical gating engine (core/) evaluating the same
 * activity pattern. This ties §4.3's ISA-level story to the
 * tile-level energy model used for the paper's figures.
 */

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "core/gating_engine.h"
#include "isa/vliw_core.h"

namespace regate {
namespace {

using core::ActivityTimeline;
using core::GatingMode;

isa::VliwCoreConfig
coreCfg()
{
    isa::VliwCoreConfig cfg;
    cfg.numSa = 2;
    cfg.numVu = 2;
    return cfg;
}

/** Kernel sweep parameter: SA pop period in cycles. */
class KernelPeriodSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelPeriodSweep, InstrumentedCoreMatchesAnalyticalEngine)
{
    compiler::KernelSpec spec;
    spec.tiles = 24;
    spec.popCycles = static_cast<Cycles>(GetParam());
    spec.vuOpsPerTile = 2;
    arch::GatingParams params;

    // Path 1: compiler instruments the kernel; the core executes it
    // and reports the cycles each VU actually spent gated.
    auto compiled = compiler::compileKernel(spec, coreCfg(), params);
    isa::VliwCore core(coreCfg());
    core.run(compiled.program);
    Cycles core_gated = core.vuTrace(0).gatedCycles();

    // Path 2: the analytical engine evaluates SwExact on the VU's
    // un-instrumented activity timeline.
    isa::VliwCore dry(coreCfg());
    dry.run(compiler::buildMatmulKernel(spec));
    auto timeline = dry.vuActivity(0);
    core::UnitSpec unit{arch::GatedUnit::Vu, 1.0,
                        1.0 / arch::npuConfig(arch::NpuGeneration::D)
                                  .frequencyHz};
    auto analytical =
        core::evaluateTimeline(timeline, unit, GatingMode::SwExact,
                               params);

    if (analytical.gateEvents == 0) {
        // Below break-even: the compiler must not have gated either.
        EXPECT_EQ(compiled.instrumentation.gatedIntervals, 0u);
        EXPECT_EQ(core_gated, 0u);
        return;
    }

    // Both paths gate; cycle counts agree within the per-interval
    // bookkeeping difference (the analytical engine budgets 2*delay
    // inside each interval; the core's off-transition and tail
    // handling differ by at most delay cycles per interval).
    EXPECT_GT(core_gated, 0u);
    double per_interval_slack =
        static_cast<double>(2 * params.onOffDelay(arch::GatedUnit::Vu) +
                            2);
    // The analytical engine also gates the trailing gap (no next use
    // exists, so the compiler cannot), worth up to one pop period.
    double slack =
        per_interval_slack *
            static_cast<double>(analytical.gateEvents) +
        static_cast<double>(spec.popCycles);
    EXPECT_NEAR(static_cast<double>(core_gated),
                static_cast<double>(analytical.gatedCycles), slack);

    // The compiler gates both VUs in every qualifying interval.
    EXPECT_EQ(compiled.instrumentation.gatedIntervals,
              2 * analytical.gateEvents -
                  (analytical.gateEvents > 0 ? 2 : 0))
        << "compiler gates interior intervals for both VUs";

    // And software gating exposes no stalls.
    EXPECT_EQ(core.wakeStallCycles(), 0u);
    EXPECT_EQ(core.totalCycles(), dry.totalCycles());
}

INSTANTIATE_TEST_SUITE_P(PopPeriods, KernelPeriodSweep,
                         ::testing::Values(8, 16, 40, 60, 100, 200,
                                           400));

TEST(CrossValidation, HwDetectMatchesAutoIdleCore)
{
    // The core's lazy auto-idle emulation and the analytical
    // HwDetect mode must agree on which gaps get gated.
    compiler::KernelSpec spec;
    spec.tiles = 10;
    spec.popCycles = 80;
    spec.vuOpsPerTile = 2;
    arch::GatingParams params;

    isa::VliwCoreConfig cfg = coreCfg();
    cfg.autoIdleDetect = true;
    cfg.vuIdleWindow = params.detectionWindow(arch::GatedUnit::Vu);
    isa::VliwCore core(cfg);
    core.run(compiler::buildMatmulKernel(spec));

    isa::VliwCore dry(coreCfg());
    dry.run(compiler::buildMatmulKernel(spec));
    core::UnitSpec unit{arch::GatedUnit::Vu, 1.0, 1e-9};
    auto analytical = core::evaluateTimeline(
        dry.vuActivity(0), unit, GatingMode::HwDetect, params);

    // Same number of gated intervals (wake events) for the interior
    // gaps; the analytical engine also counts the trailing gap.
    EXPECT_NEAR(static_cast<double>(core.vuTrace(0).wakeEvents),
                static_cast<double>(analytical.gateEvents), 1.0);
    // Hardware gating exposes the wake delay on every event.
    EXPECT_EQ(core.wakeStallCycles(),
              core.vuTrace(0).wakeEvents *
                  params.onOffDelay(arch::GatedUnit::Vu));
}

TEST(CrossValidation, CoreTimelineFeedsEngineConsistently)
{
    // An arbitrary program's exported activity must carry exactly the
    // busy cycles the core dispatched.
    isa::Program p;
    p.bundle().saPop(0, 20).vuOp(0, 3);
    p.bundle().vuOp(1, 5);
    p.bundle().saPop(1, 7).vuOp(0, 2);
    isa::VliwCore core(coreCfg());
    core.run(p);

    Cycles vu0_busy = 0;
    for (const auto &iv : core.vuTrace(0).busy)
        vu0_busy += iv.length();
    EXPECT_EQ(core.vuActivity(0).activeCycles(), vu0_busy);
    core.vuActivity(0).checkInvariants();
    core.saActivity(0).checkInvariants();
    core.saActivity(1).checkInvariants();
}

}  // namespace
}  // namespace regate
