/**
 * @file
 * Property tests: the closed-form SA model (sa_analytical.h) must
 * agree exactly with the cycle-accurate simulator over randomized
 * shapes — this is our Fig. 16-style internal validation of the
 * tile-level model, and TEST_P sweeps over array widths.
 */

#include <gtest/gtest.h>

#include "common/error.h"

#include "common/prng.h"
#include "sa/sa_analytical.h"
#include "sa/systolic_array.h"

namespace regate {
namespace sa {
namespace {

class SaWidthSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(SaWidthSweep, AnalyticalMatchesCycleAccurate)
{
    const int width = GetParam();
    Prng rng(1000 + width);
    for (int iter = 0; iter < 15; ++iter) {
        int m = 1 + static_cast<int>(rng.uniform(0, 3 * width));
        int k = 1 + static_cast<int>(rng.uniform(0, width - 1));
        int n = 1 + static_cast<int>(rng.uniform(0, width - 1));

        Matrix w(k, n), x(m, k);
        for (int i = 0; i < k; ++i)
            for (int j = 0; j < n; ++j)
                w.at(i, j) = 1.0 + rng.uniform(0, 8);
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < k; ++j)
                x.at(i, j) = rng.uniform(0, 9);

        SystolicArray sim(width, /*gating=*/true);
        sim.loadWeights(w);
        auto out = sim.run(x);
        auto ref = matmulReference(x, w);
        for (int i = 0; i < m; ++i)
            for (int j = 0; j < n; ++j)
                ASSERT_DOUBLE_EQ(out.at(i, j), ref.at(i, j));

        auto ana = analyzeTile(m, k, n, width);
        const auto &st = sim.stats();
        EXPECT_EQ(st.computeCycles, ana.computeCycles)
            << m << "x" << k << "x" << n << " w=" << width;
        EXPECT_EQ(st.peOnCycles, ana.peOnCycles);
        EXPECT_EQ(st.peWOnCycles, ana.peWOnCycles);
        EXPECT_EQ(st.peOffCycles, ana.peOffCycles);
        EXPECT_EQ(st.macs, ana.macs);
        EXPECT_EQ(st.weightLoadCycles, ana.weightLoadCycles);
        EXPECT_DOUBLE_EQ(st.spatialUtilization(),
                         ana.spatialUtilization());
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, SaWidthSweep,
                         ::testing::Values(2, 3, 4, 6, 8, 12, 16));

TEST(SaAnalytical, TileFormulae)
{
    auto s = analyzeTile(10, 4, 6, 8);
    EXPECT_EQ(s.computeCycles, 10u + 4 + 6 - 1);
    EXPECT_EQ(s.macs, 240u);
    EXPECT_EQ(s.peOnCycles, 240u);
    EXPECT_EQ(s.peWOnCycles, 24u * (19 - 10));
    EXPECT_EQ(s.peOffCycles, (64u - 24) * 19);
}

TEST(SaAnalytical, MatmulTilesOnlyKAndN)
{
    // M streams whole: one weight tile per (K, N) block.
    auto s = analyzeMatmul(1000, 256, 384, 128);
    // 2 x 3 full tiles; per tile: 1000 + 128 + 128 - 1 cycles.
    EXPECT_EQ(s.computeCycles, 6u * (1000 + 128 + 128 - 1));
    EXPECT_EQ(s.macs, 1000u * 256 * 384);
}

TEST(SaAnalytical, MatmulRemainderTiles)
{
    auto s = analyzeMatmul(10, 130, 5, 128);
    // K splits 128 + 2; N is a single 5-wide tile.
    Cycles expect = (10 + 128 + 5 - 1) + (10 + 2 + 5 - 1);
    EXPECT_EQ(s.computeCycles, expect);
    EXPECT_EQ(s.macs, 10u * 130 * 5);
}

TEST(SaAnalytical, LargeMApproachesFullSpatialUtil)
{
    auto s = analyzeMatmul(100000, 128, 128, 128);
    EXPECT_GT(s.spatialUtilization(), 0.99);
}

TEST(SaAnalytical, SmallHeadDimLimitsSpatialUtil)
{
    // DiT-XL attention: head size 72 < 128 (Fig. 5).
    auto s = analyzeMatmul(100000, 72, 128, 128);
    EXPECT_LT(s.spatialUtilization(), 0.60);
    EXPECT_GT(s.spatialUtilization(), 0.50);
}

TEST(SaAnalytical, GatedEnergyBelowFlat)
{
    auto s = analyzeTile(16, 4, 4, 8);
    double pe_w = 1e-3, tau = 1e-9;
    double gated = saStaticEnergyGated(s, pe_w, tau, 0.15, 0.03);
    double flat = pe_w * tau *
                  static_cast<double>(s.totalPeCycles());
    EXPECT_LT(gated, flat);
    EXPECT_GT(gated, 0.0);
}

TEST(SaAnalytical, ScaledArithmetic)
{
    auto s = analyzeTile(8, 4, 4, 8);
    auto s3 = s.scaled(3);
    EXPECT_EQ(s3.macs, 3 * s.macs);
    EXPECT_EQ(s3.computeCycles, 3 * s.computeCycles);
    auto sum = s;
    sum += s;
    EXPECT_EQ(sum.peOnCycles, 2 * s.peOnCycles);
}

TEST(SaAnalytical, RejectsBadShapes)
{
    EXPECT_THROW(analyzeTile(0, 1, 1, 8), ConfigError);
    EXPECT_THROW(analyzeTile(1, 9, 1, 8), ConfigError);
    EXPECT_THROW(analyzeTile(1, 1, 9, 8), ConfigError);
    EXPECT_THROW(analyzeMatmul(0, 1, 1, 8), ConfigError);
}

}  // namespace
}  // namespace sa
}  // namespace regate
