/**
 * @file
 * Tests for the workload engine: policy evaluation on hand-built
 * graphs with known structure.
 */

#include <gtest/gtest.h>

#include "sim/engine.h"

namespace regate {
namespace sim {
namespace {

using arch::Component;
using arch::NpuGeneration;
using graph::Block;
using graph::Operator;
using graph::OperatorGraph;
using graph::OpKind;

OperatorGraph
gemmNormGraph(std::uint64_t repeat)
{
    OperatorGraph g;
    g.name = "gemm-norm";
    Block b;
    b.name = "layer";
    b.repeat = repeat;

    Operator mm;
    mm.kind = OpKind::MatMul;
    mm.name = "mm";
    mm.m = 16384;
    mm.k = 1024;
    mm.n = 1024;
    mm.hbmReadBytes = 2e6;
    mm.sramDemandBytes = 8e6;
    b.ops.push_back(mm);

    Operator norm;
    norm.kind = OpKind::Normalization;
    norm.name = "norm";
    norm.vuOps = 1e7;
    norm.hbmReadBytes = 6e7;
    norm.hbmWriteBytes = 6e7;
    norm.sramDemandBytes = 2e6;
    b.ops.push_back(norm);

    g.blocks.push_back(b);
    return g;
}

TEST(Engine, PolicyNamesAndOrder)
{
    EXPECT_EQ(policyName(Policy::NoPG), "NoPG");
    EXPECT_EQ(policyName(Policy::Base), "ReGate-Base");
    EXPECT_EQ(policyName(Policy::Full), "ReGate-Full");
    EXPECT_EQ(allPolicies().size(), kNumPolicies);
}

TEST(Engine, SavingsOrderingOnMixedGraph)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(20), 1);

    double base = run.savingVsNoPg(Policy::Base);
    double hw = run.savingVsNoPg(Policy::HW);
    double full = run.savingVsNoPg(Policy::Full);
    double ideal = run.savingVsNoPg(Policy::Ideal);

    EXPECT_GT(base, 0.0);
    EXPECT_GE(hw, base - 1e-9);
    EXPECT_GE(full, hw - 1e-9);
    EXPECT_GE(ideal, full - 1e-9);
    EXPECT_LT(ideal, 1.0);
    EXPECT_DOUBLE_EQ(run.savingVsNoPg(Policy::NoPG), 0.0);
}

TEST(Engine, RepeatScalesLinearly)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto r1 = engine.run(gemmNormGraph(5), 1);
    auto r4 = engine.run(gemmNormGraph(20), 1);
    EXPECT_EQ(r4.cycles, 4 * r1.cycles);
    EXPECT_NEAR(
        r4.result(Policy::NoPG).energy.busyTotal(),
        4 * r1.result(Policy::NoPG).energy.busyTotal(),
        r1.result(Policy::NoPG).energy.busyTotal() * 0.01);
}

TEST(Engine, TimelineAccountingConsistent)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(10), 1);
    for (auto c : {Component::Sa, Component::Vu, Component::Hbm,
                   Component::Ici}) {
        EXPECT_EQ(run.timeline[c].span(), run.cycles)
            << arch::componentName(c);
        run.timeline[c].checkInvariants();
    }
    // ICI never used on a single chip.
    EXPECT_DOUBLE_EQ(run.temporalUtil(Component::Ici), 0.0);
    EXPECT_GT(run.temporalUtil(Component::Sa), 0.0);
}

TEST(Engine, IdleComponentFullySavedUnderIdeal)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(10), 1);
    // ICI is idle the whole run: Ideal zeroes its static energy.
    const auto &ideal = run.result(Policy::Ideal);
    EXPECT_DOUBLE_EQ(ideal.energy.staticJ[Component::Ici], 0.0);
    // Full leaves the 3% gated leakage.
    const auto &full = run.result(Policy::Full);
    EXPECT_GT(full.energy.staticJ[Component::Ici], 0.0);
    const auto &nopg = run.result(Policy::NoPG);
    EXPECT_LT(full.energy.staticJ[Component::Ici],
              0.1 * nopg.energy.staticJ[Component::Ici]);
}

TEST(Engine, OtherComponentNeverGated)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(10), 1);
    const auto &nopg = run.result(Policy::NoPG);
    const auto &ideal = run.result(Policy::Ideal);
    EXPECT_DOUBLE_EQ(ideal.energy.staticJ[Component::Other],
                     nopg.energy.staticJ[Component::Other]);
}

TEST(Engine, DynamicEnergyIdenticalAcrossPolicies)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(10), 1);
    double d0 = run.result(Policy::NoPG).energy.dynamicJ.sum();
    for (auto p : allPolicies())
        EXPECT_DOUBLE_EQ(run.result(p).energy.dynamicJ.sum(), d0);
}

TEST(Engine, PerfOverheadOrdering)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(50), 1);
    EXPECT_DOUBLE_EQ(run.result(Policy::NoPG).perfOverhead, 0.0);
    EXPECT_DOUBLE_EQ(run.result(Policy::Ideal).perfOverhead, 0.0);
    EXPECT_GE(run.result(Policy::Base).perfOverhead,
              run.result(Policy::HW).perfOverhead);
    EXPECT_GE(run.result(Policy::HW).perfOverhead,
              run.result(Policy::Full).perfOverhead - 1e-12);
    // Paper bound: Base < ~5%, Full < 0.5%.
    EXPECT_LT(run.result(Policy::Base).perfOverhead, 0.05);
    EXPECT_LT(run.result(Policy::Full).perfOverhead, 0.005);
}

TEST(Engine, PeakPowerAtLeastAvgPower)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(10), 1);
    for (auto p : allPolicies()) {
        EXPECT_GE(run.result(p).peakPowerW,
                  run.result(p).avgPowerW * 0.99)
            << policyName(p);
    }
}

TEST(Engine, SramOffBeatsSleep)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(10), 1);
    // Full powers unused SRAM off (0.2%); Base/HW only sleep (25%).
    EXPECT_LT(run.result(Policy::Full).energy.staticJ[Component::Sram],
              run.result(Policy::HW).energy.staticJ[Component::Sram]);
}

TEST(Engine, VuSetpmCountedUnderFull)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(10), 1);
    // The norm op creates VU idle gaps long enough to gate.
    EXPECT_GT(run.result(Policy::Full).vuGateEvents, 0u);
}

TEST(Engine, OpRecordsCoverGraph)
{
    Engine engine(arch::npuConfig(NpuGeneration::D));
    auto run = engine.run(gemmNormGraph(7), 1);
    ASSERT_EQ(run.opRecords.size(), 2u);
    EXPECT_EQ(run.opRecords[0].count(), 7u);
    EXPECT_GT(run.opRecords[0].duration(), 0u);
    EXPECT_GT(run.opRecords[0].dynamicJ(), 0.0);
}

}  // namespace
}  // namespace sim
}  // namespace regate
