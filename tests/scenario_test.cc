/**
 * @file
 * Tests for the declarative scenario engine (models/registry.h +
 * models/scenario.h): the enum path and the spec path must be ONE
 * code path — every paper workload simulated through its built-in
 * spec is bitwise-identical to the enum-driven run — and
 * registry-only scenarios (MoE) run end to end without any enum
 * value existing for them.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>

#include "common/error.h"
#include "models/registry.h"
#include "models/spec.h"
#include "models/workload.h"
#include "sim/report.h"
#include "sim/serialize.h"
#include "sim/sweep.h"

namespace regate {
namespace sim {
namespace {

using arch::NpuGeneration;
using models::ScenarioSpec;
using models::Workload;

TEST(Scenario, EnumPathBitwiseEqualsSpecPathForAllWorkloads)
{
    // The ISSUE acceptance bar: for every one of the 17 paper
    // workloads, forcing the scenario path (spec kept, no builtin
    // normalization) produces a report whose canonical JSON is
    // byte-identical to the enum path once the identity fields are
    // aligned — same setup, same energy, same op records, same
    // formatting of every number.
    for (auto w : models::allWorkloads()) {
        auto spec = std::make_shared<const ScenarioSpec>(
            models::builtinSpec(w));
        auto rep = simulateScenario(spec, NpuGeneration::D);
        ASSERT_TRUE(rep.scenario) << models::workloadName(w);

        auto ref = simulateWorkload(w, NpuGeneration::D);
        ASSERT_FALSE(ref.scenario);

        // Align the identity tag, then every byte must agree.
        rep.scenario = nullptr;
        rep.workload = w;
        EXPECT_EQ(toJson(rep), toJson(ref))
            << models::workloadName(w)
            << ": spec path diverged from enum path";
    }
}

TEST(Scenario, BuiltinSpecsRoundTripToTheirWorkload)
{
    for (auto w : models::allWorkloads()) {
        Workload back{};
        EXPECT_TRUE(
            models::builtinWorkloadOf(models::builtinSpec(w), &back))
            << models::workloadName(w);
        EXPECT_EQ(back, w);
    }
}

TEST(Scenario, ScenarioCaseNormalizesBuiltinDuplicates)
{
    // A spec identical to a paper workload becomes a plain enum case
    // (so its serialization stays byte-identical to enum grids)...
    auto builtin = std::make_shared<const ScenarioSpec>(
        models::builtinSpec(Workload::DlrmM));
    auto c = scenarioCase(builtin, NpuGeneration::C);
    EXPECT_FALSE(c.scenario);
    EXPECT_EQ(c.workload, Workload::DlrmM);

    // ...while a genuinely custom scenario keeps its spec identity.
    auto custom = *builtin;
    custom.batch = 64;
    models::validateScenario(custom);
    auto cc = scenarioCase(
        std::make_shared<const ScenarioSpec>(custom),
        NpuGeneration::C);
    ASSERT_TRUE(cc.scenario);
    EXPECT_EQ(cc.scenario->batch, 64);
}

TEST(Scenario, GatingOverridesOverlayTheBaseParams)
{
    ScenarioSpec spec = models::builtinSpec(Workload::DiTXL);
    spec.gating.emplace_back("delay_scale", 2.0);
    spec.gating.emplace_back("sram_sleep", 0.5);
    std::sort(spec.gating.begin(), spec.gating.end());
    models::validateScenario(spec);

    auto c = scenarioCase(
        std::make_shared<const ScenarioSpec>(spec),
        NpuGeneration::D);
    // Overrides force the case off the builtin fast path and ride in
    // the case's params; keys the spec does not set keep the base.
    ASSERT_TRUE(c.scenario);
    arch::GatingParams base;
    EXPECT_DOUBLE_EQ(c.params.ratios().sramSleep, 0.5);
    EXPECT_DOUBLE_EQ(c.params.ratios().logicOff,
                     base.ratios().logicOff);
    EXPECT_DOUBLE_EQ(c.params.delayScale(), 2.0);
}

TEST(Scenario, MoeScenarioRunsWithoutAnEnumValue)
{
    auto file = models::parseSpecText(
        "@regate-spec v1\n"
        "[scenario mixtral]\n"
        "family = moe\n"
        "model = 8b\n"
        "experts = 8\n"
        "batch = 16\n"
        "chips = 8\n");
    ASSERT_EQ(file.scenarios.size(), 1u);
    auto spec = file.scenarios[0];
    EXPECT_EQ(spec->extraOr("top_k", 0), 2);  // Default filled.

    Workload back{};
    EXPECT_FALSE(models::builtinWorkloadOf(*spec, &back));

    auto rep = simulateScenario(spec, NpuGeneration::D);
    ASSERT_TRUE(rep.scenario);
    EXPECT_GT(rep.units, 0.0);
    EXPECT_GT(rep.energyPerUnit(Policy::NoPG), 0.0);
    // ReGate must still save energy on a registry-only scenario.
    EXPECT_LT(rep.energyPerUnit(Policy::Full),
              rep.energyPerUnit(Policy::NoPG));
}

TEST(Scenario, ScenarioReportSerializationRoundTrips)
{
    auto file = models::parseSpecText(
        "@regate-spec v1\n"
        "[scenario tiny]\n"
        "family = dlrm\n"
        "model = s\n"
        "batch = 128\n"
        "chips = 2\n");
    auto rep = simulateScenario(file.scenarios[0], NpuGeneration::C);
    auto json = toJson(rep);
    EXPECT_NE(json.find("\"scenario\""), std::string::npos);

    auto back = reportFromJson(json);
    ASSERT_TRUE(back.scenario);
    EXPECT_TRUE(back.scenario->sameScenario(*rep.scenario));
    EXPECT_EQ(toJson(back), json);
}

TEST(Scenario, RegistryListsTheBuiltinFamilies)
{
    auto families = models::GeneratorRegistry::instance().families();
    for (const char *family :
         {"llama-train", "llama-prefill", "llama-decode", "dlrm",
          "diffusion", "moe"}) {
        EXPECT_NE(std::find(families.begin(), families.end(),
                            family),
                  families.end())
            << family << " is not registered";
    }
    // Unknown families fail by name, listing what exists.
    try {
        models::GeneratorRegistry::instance().require("quantum");
        FAIL() << "expected ConfigError";
    } catch (const ConfigError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("quantum"), std::string::npos);
        EXPECT_NE(what.find("llama-train"), std::string::npos);
    }
}

TEST(Scenario, SpecDigestTravelsThroughShardDocuments)
{
    auto file = models::parseSpecText(
        "@regate-spec v1\n"
        "[scenario tiny]\n"
        "family = dlrm\n"
        "model = s\n"
        "batch = 64\n"
        "chips = 2\n");
    auto rep = simulateScenario(file.scenarios[0], NpuGeneration::C);
    auto doc = writeRunShard({rep}, 0, 1, 0, 1, file.digest);
    auto parsed = parseShard(doc);
    EXPECT_EQ(parsed.specDigest, file.digest);

    // An enum-driven shard carries no digest at all (its bytes are
    // exactly the pre-spec format).
    auto plain = writeRunShard(
        {simulateWorkload(Workload::DlrmS, NpuGeneration::C)}, 0, 1,
        0, 1);
    EXPECT_EQ(plain.find("spec_digest"), std::string::npos);
    EXPECT_TRUE(parseShard(plain).specDigest.empty());
}

}  // namespace
}  // namespace sim
}  // namespace regate
