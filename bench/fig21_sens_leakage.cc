/**
 * @file
 * Fig. 21: sensitivity of the energy savings to the gated-state
 * leakage ratios (logic off / SRAM sleep / SRAM off as fractions of
 * active static power).
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using sim::Policy;
    bench::banner("Figure 21",
                  "energy savings vs gated-state leakage ratios "
                  "(NPU-D)");

    const std::vector<std::array<double, 3>> settings = {
        {0.03, 0.25, 0.002}, {0.1, 0.3, 0.01}, {0.2, 0.4, 0.1},
        {0.4, 0.5, 0.25},    {0.6, 0.8, 0.4},
    };

    // (workload x leakage setting) grid with per-case gating params;
    // fanned out on the shared sweep pool, results in grid order.
    auto axis = bench::workloadAxis(bench::sensitivityWorkloads());
    std::vector<sim::SweepCase> grid;
    for (const auto &sc : axis) {
        for (const auto &s : settings) {
            arch::LeakageRatios r;
            r.logicOff = s[0];
            r.sramSleep = s[1];
            r.sramOff = s[2];
            grid.push_back(bench::caseFor(sc, arch::NpuGeneration::D,
                                          arch::GatingParams(r)));
        }
    }
    auto reports = bench::runGrid(grid);

    std::size_t idx = 0;
    for (const auto &sc : axis) {
        std::cout << "\n-- " << sc.name() << " --\n";
        TablePrinter t({"LogicOff/SramSleep/SramOff", "Base", "HW",
                        "Full"});
        for (const auto &s : settings) {
            const auto &rep = reports.at(idx++);
            t.addRow({TablePrinter::fmt(s[0], 2) + "/" +
                          TablePrinter::fmt(s[1], 2) + "/" +
                          TablePrinter::fmt(s[2], 3),
                      TablePrinter::pct(
                          rep.run().savingVsNoPg(Policy::Base), 1),
                      TablePrinter::pct(
                          rep.run().savingVsNoPg(Policy::HW), 1),
                      TablePrinter::pct(
                          rep.run().savingVsNoPg(Policy::Full), 1)});
        }
        t.print(std::cout);
    }
    std::cout << "\nPaper: savings shrink with leakier gated states, "
                 "but ReGate-Full still saves 4.6%-16.4% at the "
                 "worst setting (§6.5)\n";
    return 0;
}
