/**
 * @file
 * Fig. 23: energy savings across NPU generations A..E, including the
 * projected NPU-E whose larger SAs (256x256) and SRAM (256 MB) are
 * less utilized and thus save more on non-compute-bound workloads.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using sim::Policy;
    bench::banner("Figure 23",
                  "energy savings by NPU generation (vs NoPG)");

    auto axis = bench::workloadAxis(bench::sensitivityWorkloads());
    auto reports = bench::simulateAll(axis, arch::allGenerations());
    std::size_t idx = 0;
    for (const auto &s : axis) {
        std::cout << "\n-- " << s.name() << " --\n";
        TablePrinter t({"Gen", "Base", "HW", "Full", "Ideal"});
        for (auto gen : arch::allGenerations()) {
            const auto &rep =
                bench::reportFor(reports, idx, s, gen);
            auto sav = [&](Policy p) {
                return TablePrinter::pct(rep.run().savingVsNoPg(p), 1);
            };
            t.addRow({bench::genLabel(gen), sav(Policy::Base),
                      sav(Policy::HW), sav(Policy::Full),
                      sav(Policy::Ideal)});
        }
        t.print(std::cout);
    }
    std::cout << "\nPaper: savings on NPU-E exceed NPU-D for decode/"
                 "DLRM/SD (bigger, less-utilized units); compute-"
                 "bound training/prefill save relatively less "
                 "(§6.5)\n";
    return 0;
}
