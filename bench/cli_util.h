/**
 * @file
 * Tiny shared helpers for the fleet CLIs (regate_orch,
 * regate_agent), so the strict integer-flag validation exists
 * exactly once instead of drifting per binary.
 */

#ifndef REGATE_BENCH_CLI_UTIL_H
#define REGATE_BENCH_CLI_UTIL_H

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <string>

namespace regate {
namespace bench {

/**
 * Full-match, range-checked decimal parse of a CLI value: rejects
 * empty strings, trailing garbage ("12x"), and anything outside
 * [lo, hi] (including strtol overflow). Returns false without
 * touching @p out on rejection.
 */
inline bool
parseLongArg(const char *s, long lo, long hi, long *out)
{
    if (!s || !*s)
        return false;
    char *end = nullptr;
    errno = 0;
    long v = std::strtol(s, &end, 10);
    if (!end || end == s || *end != '\0' || errno == ERANGE ||
        v < lo || v > hi)
        return false;
    *out = v;
    return true;
}

/**
 * Consume the next argv entry as an int value for @p flag, calling
 * @p usage (which must not return) with a message on a missing or
 * malformed value. The shared spelling of every `--flag N` in the
 * fleet CLIs.
 */
template <typename UsageFn>
int
intFlagArg(int argc, char **argv, int &i, const char *flag,
           UsageFn &&usage)
{
    if (++i >= argc)
        usage(std::string(flag) + " needs a value");
    long v = 0;
    if (!parseLongArg(argv[i], INT_MIN, INT_MAX, &v))
        usage(std::string("bad ") + flag + " value '" + argv[i] +
              "'");
    return static_cast<int>(v);
}

}  // namespace bench
}  // namespace regate

#endif  // REGATE_BENCH_CLI_UTIL_H
