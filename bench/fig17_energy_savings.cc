/**
 * @file
 * Fig. 17: energy savings of ReGate-Base / ReGate-HW / ReGate-Full /
 * Ideal over NoPG per workload (NPU-D), with the per-component
 * breakdown of ReGate-Full's savings.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using arch::Component;
    using sim::Policy;
    bench::banner("Figure 17",
                  "energy savings vs NoPG (NPU-D, busy energy)");

    TablePrinter t({"Workload", "Base", "HW", "Full", "Ideal",
                    "Full:SA", "Full:VU", "Full:SRAM", "Full:ICI",
                    "Full:HBM"});
    double sum_full = 0;
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports =
        bench::simulateAll(axis, {arch::NpuGeneration::D});
    std::size_t idx = 0;
    for (const auto &s : axis) {
        const auto &rep = bench::reportFor(
            reports, idx, s, arch::NpuGeneration::D);
        const auto &run = rep.run();
        double nopg = run.result(Policy::NoPG).energy.busyTotal();
        auto comp_saving = [&](Component c) {
            double saved =
                run.result(Policy::NoPG).energy.staticJ[c] -
                run.result(Policy::Full).energy.staticJ[c];
            return TablePrinter::pct(saved / nopg, 1);
        };
        sum_full += run.savingVsNoPg(Policy::Full);
        t.addRow({s.name(),
                  TablePrinter::pct(run.savingVsNoPg(Policy::Base), 1),
                  TablePrinter::pct(run.savingVsNoPg(Policy::HW), 1),
                  TablePrinter::pct(run.savingVsNoPg(Policy::Full), 1),
                  TablePrinter::pct(run.savingVsNoPg(Policy::Ideal),
                                    1),
                  comp_saving(Component::Sa),
                  comp_saving(Component::Vu),
                  comp_saving(Component::Sram),
                  comp_saving(Component::Ici),
                  comp_saving(Component::Hbm)});
    }
    t.print(std::cout);
    std::cout << "Suite average (Full): "
              << TablePrinter::pct(sum_full / axis.size(), 1)
              << "  (paper: 8.5%-32.8%, average 15.5%)\n";
    return 0;
}
