/**
 * @file
 * Fig. 4: SA temporal utilization (active cycles / total cycles) per workload and generation.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 4", "SA temporal utilization");

    TablePrinter t({"Workload", "A", "B", "C", "D"});
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports = bench::simulateAll(axis, bench::paperGenerations());
    std::size_t idx = 0;
    for (const auto &s : axis) {
        std::vector<std::string> cells = {s.name()};
        for (auto gen : bench::paperGenerations()) {
            const auto &rep = bench::reportFor(reports, idx, s, gen);
            cells.push_back(TablePrinter::pct(rep.run().temporalUtil(arch::Component::Sa), 1));
        }
        t.addRow(cells);
    }
    t.print(std::cout);
    std::cout << "Paper shape: high for training/prefill/diffusion, ~0 for DLRM and small-batch decode (S3)\n";
    return 0;
}
