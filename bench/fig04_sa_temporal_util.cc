/**
 * @file
 * Fig. 4: SA temporal utilization (active cycles / total cycles) per workload and generation.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 4", "SA temporal utilization");

    TablePrinter t({"Workload", "A", "B", "C", "D"});
    auto reports = bench::simulateAll(models::allWorkloads(),
                                      bench::paperGenerations());
    std::size_t idx = 0;
    for (auto w : models::allWorkloads()) {
        std::vector<std::string> cells = {models::workloadName(w)};
        for (auto gen : bench::paperGenerations()) {
            const auto &rep = bench::reportFor(reports, idx, w, gen);
            cells.push_back(TablePrinter::pct(rep.run().temporalUtil(arch::Component::Sa), 1));
        }
        t.addRow(cells);
    }
    t.print(std::cout);
    std::cout << "Paper shape: high for training/prefill/diffusion, ~0 for DLRM and small-batch decode (S3)\n";
    return 0;
}
