/**
 * @file
 * Fig. 18: average and peak per-chip power per workload and policy.
 * Peak power is the average power of the most power-hungry operator,
 * exactly as the paper measures it.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using sim::Policy;
    bench::banner("Figure 18",
                  "average / peak power per chip (W, NPU-D)");

    TablePrinter t({"Workload", "NoPG avg", "Base avg", "HW avg",
                    "Full avg", "Ideal avg", "NoPG peak",
                    "Full peak"});
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports =
        bench::simulateAll(axis, {arch::NpuGeneration::D});
    std::size_t idx = 0;
    for (const auto &s : axis) {
        const auto &rep = bench::reportFor(
            reports, idx, s, arch::NpuGeneration::D);
        auto avg = [&](Policy p) {
            return TablePrinter::fmt(rep.run().result(p).avgPowerW, 0);
        };
        t.addRow({s.name(), avg(Policy::NoPG),
                  avg(Policy::Base), avg(Policy::HW),
                  avg(Policy::Full), avg(Policy::Ideal),
                  TablePrinter::fmt(
                      rep.run().result(Policy::NoPG).peakPowerW, 0),
                  TablePrinter::fmt(
                      rep.run().result(Policy::Full).peakPowerW, 0)});
    }
    t.print(std::cout);

    // Cooling-cost estimate (§6.3): $7 per chip-watt of peak power.
    // Reuses the reports above — the old second simulate loop was a
    // redundant warm re-run of identical cases.
    double saved = 0;
    for (const auto &rep : reports) {
        saved += rep.run().result(Policy::NoPG).peakPowerW -
                 rep.run().result(Policy::Full).peakPowerW;
    }
    saved /= reports.size();
    std::cout << "Average peak-power reduction: "
              << TablePrinter::fmt(saved, 1) << " W/chip -> cooling "
              << "capex saving ~$" << TablePrinter::fmt(7 * saved, 0)
              << "/chip at $7/chip-watt (paper: 31 W, $217)\n";
    return 0;
}
