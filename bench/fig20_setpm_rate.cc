/**
 * @file
 * Fig. 20: executed setpm instructions per 1,000 cycles under
 * ReGate-Full. The VU rate is bounded by 1000/BET ~ 31; the SRAM
 * rate is negligible because capacity changes only at operator
 * boundaries.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using sim::Policy;
    bench::banner("Figure 20",
                  "setpm instructions per 1K cycles (ReGate-Full, "
                  "NPU-D)");

    TablePrinter t({"Workload", "VU setpm/1Kcyc", "SRAM setpm/1Kcyc"});
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports =
        bench::simulateAll(axis, {arch::NpuGeneration::D});
    std::size_t idx = 0;
    for (const auto &s : axis) {
        const auto &rep = bench::reportFor(
            reports, idx, s, arch::NpuGeneration::D);
        const auto &full = rep.run().result(Policy::Full);
        double cycles = static_cast<double>(rep.run().cycles);
        // Each gated interval needs an off and an on setpm.
        double vu_rate = 2.0 *
                         static_cast<double>(full.vuGateEvents) /
                         cycles * 1000.0;
        double sram_rate =
            2.0 * static_cast<double>(full.sramSetpmPairs) / cycles *
            1000.0;
        t.addRow({s.name(),
                  TablePrinter::fmt(vu_rate, 3),
                  TablePrinter::fmt(sram_rate, 4)});
    }
    t.print(std::cout);
    std::cout << "Bound: < 1000 / BET(VU) = "
              << TablePrinter::fmt(
                     1000.0 / arch::GatingParams().breakEven(
                                  arch::GatedUnit::Vu),
                     1)
              << " (paper measures < 20 on average)\n";
    return 0;
}
