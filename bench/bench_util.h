/**
 * @file
 * Shared helpers for the figure/table regeneration benches. Each
 * bench binary prints the rows/series of one paper artifact so the
 * output can be compared side by side with the paper (shape, not
 * absolute numbers -- see EXPERIMENTS.md).
 */

#ifndef REGATE_BENCH_BENCH_UTIL_H
#define REGATE_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/table.h"
#include "sim/report.h"
#include "sim/serialize.h"
#include "sim/sweep.h"

namespace regate {
namespace bench {

/**
 * The shared sweep runner used by the figure binaries. One pool per
 * process; worker count follows REGATE_THREADS / hardware
 * concurrency. Results are deterministic (input-ordered) regardless
 * of the worker count.
 */
inline sim::SweepRunner &
sweeper()
{
    static sim::SweepRunner runner;
    return runner;
}

/**
 * Sharded-sweep CLI state shared by the figure/table binaries:
 *
 *     figNN --shard i/N --out shard.json   simulate shard i of the
 *         binary's sweep grid, write the index-aligned results as
 *         JSON (sim/serialize.h), and exit without rendering;
 *     figNN --from merged.json [...]       skip simulation, load the
 *         full result vector from merged/shard files (together they
 *         must cover the grid exactly), and render normally — the
 *         stdout is byte-identical to an unsharded run.
 *
 * Shard files from different processes reassemble with
 * tools/merge_shards.py (or sim::mergeRunShards in-process).
 */
struct BenchCli
{
    int shardIndex = 0;
    int shardCount = 0;  ///< 0 = not sharded.
    std::string outPath;
    std::vector<std::string> fromPaths;

    bool sharded() const { return shardCount > 0; }
    bool fromFiles() const { return !fromPaths.empty(); }
};

inline BenchCli &
benchCli()
{
    static BenchCli cli;
    return cli;
}

/**
 * Parse the shared bench CLI (see BenchCli). Call first thing in
 * main(); exits with code 2 and a usage message on a bad command
 * line. Binaries without a sweep grid simply never read the state.
 */
inline void
initBench(int argc, char **argv)
{
    auto &cli = benchCli();
    auto usage = [&](const std::string &msg) {
        std::cerr << argv[0] << ": " << msg << "\n"
                  << "usage: " << argv[0]
                  << " [--shard i/N --out shard.json]"
                  << " [--from results.json ...]\n";
        std::exit(2);
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--shard") {
            if (++i >= argc)
                usage("--shard needs an i/N argument");
            int index = -1, count = 0;
            char extra = 0;
            if (std::sscanf(argv[i], "%d/%d%c", &index, &count,
                            &extra) != 2 ||
                index < 0 || count < 1 || index >= count)
                usage(std::string("bad --shard value '") + argv[i] +
                      "' (want i/N with 0 <= i < N)");
            cli.shardIndex = index;
            cli.shardCount = count;
        } else if (arg == "--out") {
            if (++i >= argc)
                usage("--out needs a path");
            cli.outPath = argv[i];
        } else if (arg == "--from") {
            // Greedy: consume every following non-option argument,
            // so "--from shard0.json shard1.json" works.
            std::size_t before = cli.fromPaths.size();
            for (++i; i < argc && argv[i][0] != '-'; ++i)
                cli.fromPaths.emplace_back(argv[i]);
            --i;
            if (cli.fromPaths.size() == before)
                usage("--from needs at least one path");
        } else {
            usage("unknown argument '" + arg + "'");
        }
    }
    if (cli.sharded() && cli.fromFiles())
        usage("--shard and --from are mutually exclusive");
    if (cli.sharded() && cli.outPath.empty())
        usage("--shard requires --out");
    if (!cli.sharded() && !cli.outPath.empty())
        usage("--out requires --shard (use --shard 0/1 for a "
              "complete single-shard document)");
}

namespace detail {

inline std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    REGATE_CHECK(in.good(), "cannot open ", path);
    std::ostringstream buf;
    buf << in.rdbuf();
    REGATE_CHECK(in.good() || in.eof(), "error reading ", path);
    return buf.str();
}

inline void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream out(path, std::ios::binary);
    REGATE_CHECK(out.good(), "cannot write ", path);
    out << content;
    out.flush();
    REGATE_CHECK(out.good(), "error writing ", path);
}

inline std::vector<sim::ShardDoc>
loadShardDocs(const std::vector<std::string> &paths)
{
    std::vector<sim::ShardDoc> docs;
    docs.reserve(paths.size());
    for (const auto &path : paths)
        docs.push_back(sim::parseShard(readFile(path)));
    return docs;
}

/**
 * Run a --from / --shard step, turning ConfigError (bad file, bad
 * coverage, unwritable path) and LogicError (corrupted result data
 * caught by invariant re-checks, e.g. a hand-edited timeline) into a
 * clean CLI failure instead of an uncaught-exception abort.
 */
template <typename Fn>
auto
orDie(const char *what, Fn &&fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const ConfigError &e) {
        std::cerr << what << ": " << e.what() << "\n";
        std::exit(1);
    } catch (const LogicError &e) {
        std::cerr << what << ": " << e.what() << "\n";
        std::exit(1);
    }
}

/**
 * --from results must be the results of THIS binary's grid, not just
 * any grid of the same size: every serialized case carries its
 * (workload, generation, gating params), so a results file from a
 * different binary — even one whose grid shares workloads and
 * generations, like fig21 vs fig22 — fails here instead of
 * rendering silently wrong figures.
 */
inline void
checkCaseIdentity(const sim::WorkloadReport &rep,
                  const sim::SweepCase &expect, std::size_t index)
{
    REGATE_CHECK(rep.workload == expect.workload &&
                     rep.gen == expect.gen &&
                     rep.gatingParams() == expect.params &&
                     (!expect.hasSetup || rep.setup == expect.setup),
                 "result ", index, " is for ",
                 models::workloadName(rep.workload), "/",
                 arch::generationName(rep.gen),
                 " with different case parameters than this "
                 "binary's grid expects — wrong results file?");
}

}  // namespace detail

/**
 * Run the binary's sweep grid honoring the sharding CLI: shard mode
 * simulates only this process's slice, writes the shard JSON, and
 * exits; --from mode loads previously computed results instead of
 * simulating. The default is the plain in-process parallel sweep.
 */
inline std::vector<sim::WorkloadReport>
runGrid(const std::vector<sim::SweepCase> &grid)
{
    const auto &cli = benchCli();
    if (cli.fromFiles()) {
        return detail::orDie("--from", [&] {
            auto merged = sim::mergeRunShards(
                detail::loadShardDocs(cli.fromPaths));
            REGATE_CHECK(merged.size() == grid.size(),
                         "results cover ", merged.size(),
                         " cases but this binary's grid has ",
                         grid.size());
            for (std::size_t i = 0; i < merged.size(); ++i)
                detail::checkCaseIdentity(merged[i], grid[i], i);
            return merged;
        });
    }
    if (cli.sharded()) {
        auto range = sim::shardRange(grid.size(), cli.shardIndex,
                                     cli.shardCount);
        auto results =
            sweeper().run(sim::shardGrid(grid, cli.shardIndex,
                                         cli.shardCount));
        detail::orDie("--out", [&] {
            detail::writeFile(
                cli.outPath,
                sim::writeRunShard(results, range.begin, grid.size(),
                                   cli.shardIndex, cli.shardCount));
            return 0;
        });
        std::exit(0);
    }
    return sweeper().run(grid);
}

/** SLO-search counterpart of runGrid (the fig02/table4 path). */
inline std::vector<sim::SloResult>
searchGrid(const std::vector<sim::SweepCase> &grid)
{
    const auto &cli = benchCli();
    if (cli.fromFiles()) {
        return detail::orDie("--from", [&] {
            auto merged = sim::mergeSearchShards(
                detail::loadShardDocs(cli.fromPaths));
            REGATE_CHECK(merged.size() == grid.size(),
                         "results cover ", merged.size(),
                         " cases but this binary's grid has ",
                         grid.size());
            // The winning report keeps the searched case's identity
            // (the search only varies the setup).
            for (std::size_t i = 0; i < merged.size(); ++i) {
                sim::SweepCase expect = grid[i];
                expect.hasSetup = false;
                detail::checkCaseIdentity(merged[i].report, expect,
                                          i);
            }
            return merged;
        });
    }
    if (cli.sharded()) {
        auto range = sim::shardRange(grid.size(), cli.shardIndex,
                                     cli.shardCount);
        auto results =
            sweeper().search(sim::shardGrid(grid, cli.shardIndex,
                                            cli.shardCount));
        detail::orDie("--out", [&] {
            detail::writeFile(
                cli.outPath,
                sim::writeSearchShard(results, range.begin,
                                      grid.size(), cli.shardIndex,
                                      cli.shardCount));
            return 0;
        });
        std::exit(0);
    }
    return sweeper().search(grid);
}

/** Simulate (workload, gen) pairs in parallel, input-ordered. */
inline std::vector<sim::WorkloadReport>
simulateAll(const std::vector<models::Workload> &workloads,
            const std::vector<arch::NpuGeneration> &gens,
            const arch::GatingParams &params = {})
{
    return runGrid(sim::makeGrid(workloads, gens, params));
}

/**
 * Walk simulateAll results in consumption order: returns the report
 * at @p idx and advances it, checking the report really is the
 * (workload, gen) the caller's loop expects — so a consumption loop
 * that falls out of step with makeGrid's workload-major grid order
 * fails loudly instead of silently showing another case's numbers.
 */
inline const sim::WorkloadReport &
reportFor(const std::vector<sim::WorkloadReport> &reports,
          std::size_t &idx, models::Workload w,
          arch::NpuGeneration gen)
{
    const auto &rep = reports.at(idx++);
    REGATE_CHECK(rep.workload == w && rep.gen == gen,
                 "report order mismatch at index ", idx - 1,
                 ": expected ", models::workloadName(w), "/",
                 arch::generationName(gen), ", got ",
                 models::workloadName(rep.workload), "/",
                 arch::generationName(rep.gen));
    return rep;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::cout << "==============================================="
                 "=============\n"
              << artifact << ": " << caption << "\n"
              << "==============================================="
                 "=============\n";
}

/** The generations most figures sweep (A..D; E only in Fig. 23). */
inline std::vector<arch::NpuGeneration>
paperGenerations()
{
    return {arch::NpuGeneration::A, arch::NpuGeneration::B,
            arch::NpuGeneration::C, arch::NpuGeneration::D};
}

/** The §6.5 sensitivity workload set. */
inline std::vector<models::Workload>
sensitivityWorkloads()
{
    return {models::Workload::Train405B, models::Workload::Prefill405B,
            models::Workload::Decode405B, models::Workload::DlrmL,
            models::Workload::DiTXL};
}

/** Short generation label ("A".."E"). */
inline std::string
genLabel(arch::NpuGeneration gen)
{
    return arch::generationName(gen);
}

}  // namespace bench
}  // namespace regate

#endif  // REGATE_BENCH_BENCH_UTIL_H
