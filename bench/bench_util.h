/**
 * @file
 * Shared helpers for the figure/table regeneration benches. Each
 * bench binary prints the rows/series of one paper artifact so the
 * output can be compared side by side with the paper (shape, not
 * absolute numbers -- see EXPERIMENTS.md).
 */

#ifndef REGATE_BENCH_BENCH_UTIL_H
#define REGATE_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/table.h"
#include "sim/report.h"
#include "sim/sweep.h"

namespace regate {
namespace bench {

/**
 * The shared sweep runner used by the figure binaries. One pool per
 * process; worker count follows REGATE_THREADS / hardware
 * concurrency. Results are deterministic (input-ordered) regardless
 * of the worker count.
 */
inline sim::SweepRunner &
sweeper()
{
    static sim::SweepRunner runner;
    return runner;
}

/** Simulate (workload, gen) pairs in parallel, input-ordered. */
inline std::vector<sim::WorkloadReport>
simulateAll(const std::vector<models::Workload> &workloads,
            const std::vector<arch::NpuGeneration> &gens,
            const arch::GatingParams &params = {})
{
    return sweeper().run(sim::makeGrid(workloads, gens, params));
}

/**
 * Walk simulateAll results in consumption order: returns the report
 * at @p idx and advances it, checking the report really is the
 * (workload, gen) the caller's loop expects — so a consumption loop
 * that falls out of step with makeGrid's workload-major grid order
 * fails loudly instead of silently showing another case's numbers.
 */
inline const sim::WorkloadReport &
reportFor(const std::vector<sim::WorkloadReport> &reports,
          std::size_t &idx, models::Workload w,
          arch::NpuGeneration gen)
{
    const auto &rep = reports.at(idx++);
    REGATE_CHECK(rep.workload == w && rep.gen == gen,
                 "report order mismatch at index ", idx - 1,
                 ": expected ", models::workloadName(w), "/",
                 arch::generationName(gen), ", got ",
                 models::workloadName(rep.workload), "/",
                 arch::generationName(rep.gen));
    return rep;
}

/** Print the standard bench banner. */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    std::cout << "==============================================="
                 "=============\n"
              << artifact << ": " << caption << "\n"
              << "==============================================="
                 "=============\n";
}

/** The generations most figures sweep (A..D; E only in Fig. 23). */
inline std::vector<arch::NpuGeneration>
paperGenerations()
{
    return {arch::NpuGeneration::A, arch::NpuGeneration::B,
            arch::NpuGeneration::C, arch::NpuGeneration::D};
}

/** The §6.5 sensitivity workload set. */
inline std::vector<models::Workload>
sensitivityWorkloads()
{
    return {models::Workload::Train405B, models::Workload::Prefill405B,
            models::Workload::Decode405B, models::Workload::DlrmL,
            models::Workload::DiTXL};
}

/** Short generation label ("A".."E"). */
inline std::string
genLabel(arch::NpuGeneration gen)
{
    return arch::generationName(gen);
}

}  // namespace bench
}  // namespace regate

#endif  // REGATE_BENCH_BENCH_UTIL_H
