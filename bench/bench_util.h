/**
 * @file
 * Shared helpers for the figure/table regeneration benches. Each
 * bench binary prints the rows/series of one paper artifact so the
 * output can be compared side by side with the paper (shape, not
 * absolute numbers -- see EXPERIMENTS.md).
 */

#ifndef REGATE_BENCH_BENCH_UTIL_H
#define REGATE_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/fsio.h"
#include "common/table.h"
#include "models/registry.h"
#include "models/spec.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/report.h"
#include "sim/serialize.h"
#include "sim/sweep.h"

namespace regate {
namespace bench {

/**
 * The shared sweep runner used by the figure binaries. One pool per
 * process; worker count follows REGATE_THREADS / hardware
 * concurrency. Results are deterministic (input-ordered) regardless
 * of the worker count.
 */
inline sim::SweepRunner &
sweeper()
{
    static sim::SweepRunner runner;
    return runner;
}

/**
 * Sharded-sweep CLI state shared by the figure/table binaries:
 *
 *     figNN --shard i/N --out shard.json   simulate shard i of the
 *         binary's sweep grid, write the index-aligned results as
 *         JSON (sim/serialize.h), and exit without rendering;
 *     figNN --from merged.json [...]       skip simulation, load the
 *         full result vector from merged/shard files (together they
 *         must cover the grid exactly), and render normally — the
 *         stdout is byte-identical to an unsharded run;
 *     figNN --cases                        print the binary's total
 *         grid case count and exit (the orchestrator's planning
 *         query);
 *     figNN --worker --shard i/N --out f   shard mode plus the
 *         machine-readable worker handshake (see below).
 *
 * Shard files from different processes reassemble with
 * tools/merge_shards.py (or sim::mergeRunShards in-process);
 * `regate_orch` drives the whole split-run-merge loop as one
 * command.
 *
 * Worker handshake (what `--worker` adds): stdout carries the
 * protocol lines
 *
 *     @regate-worker v1 start kind=<run|search> shard=i/N
 *         cases=<total> range=<begin>..<end>
 *     @regate-worker v1 case <k>/<n>        (per completed case)
 *     @regate-worker v1 done out=<path> bytes=<n> file_digest=<hex16>
 *
 * where the `case` lines are the per-case heartbeat — one per
 * completed case of this shard's slice, monotone k, emitted in
 * completion order — that lets a driver time out on *stall* (no
 * heartbeat for its --stall-timeout-s) instead of wall clock,
 * distinguishing a straggling-but-alive shard from a wedged one;
 * and file_digest is sim::contentDigest of the exact bytes written
 * to --out, so a driver can verify the artifact that landed on
 * (possibly shared) storage end to end. Exit status protocol, worker
 * or not: 0 = success, 1 = runtime/config failure (message on
 * stderr), 2 = usage error. A worker killed by a signal reports the
 * usual waitpid status — no shutdown line is promised.
 */
struct BenchCli
{
    int shardIndex = 0;
    int shardCount = 0;  ///< 0 = not sharded.
    std::string outPath;
    std::vector<std::string> fromPaths;
    bool casesOnly = false;
    bool worker = false;

    /**
     * `--spec FILE` state: the user-defined scenarios that replace
     * the binary's default workload axis (workloadAxis), and the spec
     * file's content digest — stamped into every shard document this
     * process writes and cross-checked against every `--from` file it
     * reads, so results computed from a different (or no) spec file
     * are rejected instead of rendered.
     */
    std::string specPath;
    std::vector<std::shared_ptr<const models::ScenarioSpec>> scenarios;
    std::string specDigest;

    /**
     * `--trace-out FILE`: record the run as Chrome/Perfetto
     * trace-event JSON (obs/trace.h) — graph build/compile and
     * engine phases, cache hits, one span per completed sweep case.
     * Works in every mode (plain, --shard, --worker, --from).
     */
    std::string traceOut;

    /**
     * `--metrics-out FILE`: write the process's canonical metrics
     * snapshot (obs::MetricsRegistry::writeSnapshot — the same
     * writer `regate_orch --metrics-out` uses) at exit, covering
     * every mode including the shard-mode std::exit(0) path.
     */
    std::string metricsOut;

    bool sharded() const { return shardCount > 0; }
    bool fromFiles() const { return !fromPaths.empty(); }
    bool hasSpec() const { return !scenarios.empty(); }
};

inline BenchCli &
benchCli()
{
    static BenchCli cli;
    return cli;
}

/**
 * Validate and parse an "i/N" shard spec. This is the one shard-spec
 * validator every binary shares (via initBench), so a malformed
 * spec, N <= 0, or i outside [0, N) produces the same usage error
 * everywhere instead of per-binary behavior. Returns false and sets
 * @p error without touching the outputs on rejection.
 */
inline bool
parseShardSpec(const std::string &spec, int &index, int &count,
               std::string &error)
{
    int i = -1, n = 0;
    char extra = 0;
    if (std::sscanf(spec.c_str(), "%d/%d%c", &i, &n, &extra) != 2) {
        error = "malformed shard spec '" + spec +
                "' (want i/N, e.g. 0/4)";
        return false;
    }
    if (n <= 0) {
        error = "shard count must be positive in '" + spec + "'";
        return false;
    }
    if (i < 0) {
        error = "shard index must be non-negative in '" + spec + "'";
        return false;
    }
    if (i >= n) {
        error = "shard index " + std::to_string(i) +
                " out of range for " + std::to_string(n) +
                " shard(s) in '" + spec + "' (want 0 <= i < N)";
        return false;
    }
    index = i;
    count = n;
    return true;
}

/**
 * `--list-generators`: print every registered workload generator and
 * the spec keys it accepts, then exit 0. The output is the reference
 * for writing `--spec` files (and the smoke test that the registry
 * self-registration ran).
 */
inline void
listGeneratorsAndExit()
{
    const auto &registry = models::GeneratorRegistry::instance();
    for (const auto &family : registry.families()) {
        const auto *gen = registry.find(family);
        std::cout << family << " — " << gen->familyLabel() << "\n";
        for (const auto &key : gen->specKeys())
            std::cout << "  " << key.key << ": " << key.doc << "\n";
    }
    std::exit(0);
}

/**
 * Parse the shared bench CLI (see BenchCli). Call first thing in
 * main(); exits with code 2 and a usage message on a bad command
 * line. Binaries without a sweep grid simply never read the state.
 */
inline void
initBench(int argc, char **argv)
{
    auto &cli = benchCli();
    auto usage = [&](const std::string &msg) {
        std::cerr << argv[0] << ": " << msg << "\n"
                  << "usage: " << argv[0]
                  << " [--spec scenarios.spec] [--list-generators]"
                  << " [--shard i/N --out shard.json [--worker]]"
                  << " [--from results.json ...] [--cases]"
                  << " [--trace-out trace.json]"
                  << " [--metrics-out metrics.json]\n";
        std::exit(2);
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--spec") {
            if (++i >= argc)
                usage("--spec needs a path");
            cli.specPath = argv[i];
        } else if (arg == "--list-generators") {
            listGeneratorsAndExit();
        } else if (arg == "--shard") {
            if (++i >= argc)
                usage("--shard needs an i/N argument");
            std::string error;
            if (!parseShardSpec(argv[i], cli.shardIndex,
                                cli.shardCount, error))
                usage(error);
        } else if (arg == "--cases") {
            cli.casesOnly = true;
        } else if (arg == "--worker") {
            cli.worker = true;
        } else if (arg == "--out") {
            if (++i >= argc)
                usage("--out needs a path");
            cli.outPath = argv[i];
        } else if (arg == "--trace-out") {
            if (++i >= argc)
                usage("--trace-out needs a path");
            cli.traceOut = argv[i];
        } else if (arg == "--metrics-out") {
            if (++i >= argc)
                usage("--metrics-out needs a path");
            cli.metricsOut = argv[i];
        } else if (arg == "--from") {
            // Greedy: consume every following non-option argument,
            // so "--from shard0.json shard1.json" works.
            std::size_t before = cli.fromPaths.size();
            for (++i; i < argc && argv[i][0] != '-'; ++i)
                cli.fromPaths.emplace_back(argv[i]);
            --i;
            if (cli.fromPaths.size() == before)
                usage("--from needs at least one path");
        } else {
            usage("unknown argument '" + arg + "'");
        }
    }
    if (cli.sharded() && cli.fromFiles())
        usage("--shard and --from are mutually exclusive");
    if (cli.sharded() && cli.outPath.empty())
        usage("--shard requires --out");
    if (!cli.sharded() && !cli.outPath.empty())
        usage("--out requires --shard (use --shard 0/1 for a "
              "complete single-shard document)");
    if (cli.casesOnly && (cli.sharded() || cli.fromFiles() ||
                          cli.worker))
        usage("--cases is a standalone query");
    if (cli.worker && !cli.sharded())
        usage("--worker requires --shard/--out (it only changes "
              "how a shard run reports)");
    if (!cli.specPath.empty()) {
        try {
            auto file = models::parseSpecFile(cli.specPath);
            cli.scenarios = std::move(file.scenarios);
            cli.specDigest = std::move(file.digest);
        } catch (const ConfigError &e) {
            std::cerr << argv[0] << ": --spec: " << e.what() << "\n";
            std::exit(1);
        }
    }
    if (!cli.traceOut.empty())
        obs::TraceRecorder::instance().start(cli.traceOut);
    if (!cli.metricsOut.empty())
        std::atexit([] {
            try {
                obs::MetricsRegistry::instance().writeSnapshot(
                    benchCli().metricsOut);
            } catch (const ConfigError &e) {
                std::cerr << "--metrics-out: " << e.what() << "\n";
            }
        });
    // Always-on flight recorder: every grid binary dies with a
    // postmortem timeline next to whatever it was producing (or
    // next to the binary, when it produces only stdout).
    std::string postmortem;
    if (!cli.outPath.empty())
        postmortem = cli.outPath;
    else if (!cli.traceOut.empty())
        postmortem = cli.traceOut;
    else if (!cli.metricsOut.empty())
        postmortem = cli.metricsOut;
    else {
        postmortem = argv[0];
        auto slash = postmortem.find_last_of('/');
        if (slash != std::string::npos)
            postmortem = postmortem.substr(slash + 1);
    }
    obs::FlightRecorder::installCrashHandlers(postmortem +
                                              ".postmortem.json");
}

/**
 * The initBench counterpart for binaries with NO sweep grid (fig15
 * and tables 2/3 print closed-form/VLIW-core values): any argument —
 * including the orchestrator's/agent's `--cases` capability probe —
 * is rejected with a one-line usage error and exit 2, so pointing
 * `regate_orch`/`regate_agent` at one of these fails crisply at
 * probe time instead of as an opaque worker-failure loop.
 */
inline void
initBenchNoGrid(int argc, char **argv)
{
    if (argc <= 1)
        return;
    std::cerr << argv[0] << ": unexpected argument '" << argv[1]
              << "' — this binary has no sweep grid and does not "
                 "speak the --shard/--cases worker protocol, so it "
                 "cannot be driven by regate_orch or regate_agent\n";
    std::exit(2);
}

namespace detail {

using ::regate::readFile;
using ::regate::writeFile;

/** Handle `--cases`: print the grid size and exit successfully. */
inline void
maybePrintCasesAndExit(std::size_t cases)
{
    if (!benchCli().casesOnly)
        return;
    std::cout << cases << "\n";
    std::exit(0);
}

/**
 * Worker-handshake start line, plus the REGATE_TEST_STALL_S test
 * hook: a worker that finds the variable sleeps that many seconds
 * before simulating, which is how the orchestrator's failure-path
 * tests manufacture a deterministic straggler for the timeout /
 * kill-reassignment machinery. Honored only in --worker mode.
 */
inline void
workerStart(const char *kind, sim::ShardRange range,
            std::size_t cases)
{
    const auto &cli = benchCli();
    if (!cli.worker)
        return;
    std::cout << "@regate-worker v1 start kind=" << kind
              << " shard=" << cli.shardIndex << "/" << cli.shardCount
              << " cases=" << cases << " range=" << range.begin
              << ".." << range.end << "\n"
              << std::flush;
    REGATE_OBS(obs::FlightRecorder::instance().instant(
        "worker.start",
        ("shard=" + std::to_string(cli.shardIndex) + "/" +
         std::to_string(cli.shardCount))
            .c_str()));
    if (const char *stall = std::getenv("REGATE_TEST_STALL_S")) {
        long seconds = std::strtol(stall, nullptr, 10);
        if (seconds > 0)
            std::this_thread::sleep_for(
                std::chrono::seconds(seconds));
    }
}

/**
 * The per-case heartbeat emitter for --worker runs (null otherwise):
 * one `@regate-worker v1 case k/n` line per completed case. The
 * runner serializes progress callbacks and hands over strictly
 * increasing done counts (sim::SweepProgress), so the lines are
 * monotone without any locking here. The REGATE_TEST_SLOW_CASE_S
 * hook sleeps after each heartbeat — inside the serialized
 * callback, so heartbeats stay ~that far apart at any thread
 * count — which is how the stall-timeout tests manufacture a
 * straggling-but-ALIVE shard that must survive a stall timeout
 * shorter than its wall clock.
 */
inline sim::SweepProgress
workerProgress()
{
    if (!benchCli().worker)
        return {};
    long slow = 0;
    if (const char *s = std::getenv("REGATE_TEST_SLOW_CASE_S"))
        slow = std::strtol(s, nullptr, 10);
    return [slow](std::size_t done, std::size_t total) {
        std::cout << "@regate-worker v1 case " << done << "/"
                  << total << "\n"
                  << std::flush;
        if (slow > 0)
            std::this_thread::sleep_for(std::chrono::seconds(slow));
    };
}

/**
 * The explicit trace lane of the sweep-progress timeline. Per-case
 * spans cover the interval since the previous completion *globally*
 * — not since this worker thread's previous case — so they cannot
 * live on the worker threads' auto lanes without overlapping a
 * concurrent case's sim spans. On one dedicated lane they tile the
 * grid span exactly, and the value is far above any auto-allocated
 * thread lane.
 */
constexpr int kSweepLane = 1000000;

/**
 * Wrap a sweep-progress callback with per-case trace spans: each
 * completed case becomes one complete event on kSweepLane covering
 * the interval since the previous completion, seeded at
 * @p sweep_start so the first case's span begins where the
 * enclosing grid span does. The runner serializes progress
 * callbacks with strictly increasing done counts, so consecutive
 * spans never overlap. Case completions are mirrored into the
 * always-on flight recorder (same clock — obs::monotonicUs()), so
 * a crash mid-sweep leaves the recent cases in the postmortem even
 * without --trace-out.
 */
inline sim::SweepProgress
traceProgress(sim::SweepProgress inner, std::uint64_t sweep_start)
{
    auto &trace = obs::TraceRecorder::instance();
    auto &flight = obs::FlightRecorder::instance();
    if (!trace.enabled() && !flight.enabled())
        return inner;
    auto last = std::make_shared<std::uint64_t>(sweep_start);
    return [inner, last, &trace, &flight](std::size_t done,
                                          std::size_t total) {
        auto now = obs::monotonicUs();
        if (trace.enabled())
            trace.completeLane("case", "sweep", kSweepLane, *last,
                               now,
                               {{"done", std::to_string(done)},
                                {"total", std::to_string(total)}});
        if (flight.enabled()) {
            char detail[40];
            std::snprintf(detail, sizeof detail, "%zu/%zu", done,
                          total);
            flight.complete("case", *last, now, detail, kSweepLane);
        }
        *last = now;
        if (inner)
            inner(done, total);
    };
}

/** Close the grid span and persist the trace (no-op when off). */
inline void
traceGridDone(const char *kind, std::uint64_t sweep_start,
              std::size_t cases)
{
    auto &flight = obs::FlightRecorder::instance();
    if (flight.enabled()) {
        char detail[40];
        std::snprintf(detail, sizeof detail, "cases=%zu", cases);
        flight.complete(kind, sweep_start, obs::monotonicUs(),
                        detail, kSweepLane);
    }
    auto &trace = obs::TraceRecorder::instance();
    if (!trace.enabled())
        return;
    trace.completeLane(kind, "sweep", kSweepLane, sweep_start,
                       trace.nowUs(),
                       {{"cases", std::to_string(cases)}});
    trace.flush();
}

/** Worker-handshake done line (digest of the bytes just written). */
inline void
workerDone(const std::string &path, const std::string &content)
{
    if (!benchCli().worker)
        return;
    std::cout << "@regate-worker v1 done out=" << path
              << " bytes=" << content.size()
              << " file_digest=" << sim::contentDigest(content)
              << "\n"
              << std::flush;
}

inline std::vector<sim::ShardDoc>
loadShardDocs(const std::vector<std::string> &paths)
{
    std::vector<sim::ShardDoc> docs;
    docs.reserve(paths.size());
    for (const auto &path : paths) {
        docs.push_back(sim::parseShard(readFile(path)));
        // Results must come from this run's exact spec file (or from
        // no spec, matching this run): a digest mismatch means the
        // numbers answer a different question than the grid we are
        // about to render them into.
        REGATE_CHECK(
            docs.back().specDigest == benchCli().specDigest, path,
            ": spec digest mismatch (results carry \"",
            docs.back().specDigest, "\", this run expects \"",
            benchCli().specDigest,
            "\") — results computed from a different spec file?");
    }
    return docs;
}

/**
 * Run a --from / --shard step, turning ConfigError (bad file, bad
 * coverage, unwritable path) and LogicError (corrupted result data
 * caught by invariant re-checks, e.g. a hand-edited timeline) into a
 * clean CLI failure instead of an uncaught-exception abort.
 */
template <typename Fn>
auto
orDie(const char *what, Fn &&fn) -> decltype(fn())
{
    try {
        return fn();
    } catch (const ConfigError &e) {
        std::cerr << what << ": " << e.what() << "\n";
        std::exit(1);
    } catch (const LogicError &e) {
        std::cerr << what << ": " << e.what() << "\n";
        std::exit(1);
    }
}

/**
 * --from results must be the results of THIS binary's grid, not just
 * any grid of the same size: every serialized case carries its
 * (workload, generation, gating params), so a results file from a
 * different binary — even one whose grid shares workloads and
 * generations, like fig21 vs fig22 — fails here instead of
 * rendering silently wrong figures.
 */
/** Display name of a report's case (scenario name or enum name). */
inline std::string
caseName(const sim::WorkloadReport &rep)
{
    return rep.scenario ? rep.scenario->name
                        : models::workloadName(rep.workload);
}

inline void
checkCaseIdentity(const sim::WorkloadReport &rep,
                  const sim::SweepCase &expect, std::size_t index)
{
    bool identity_ok =
        expect.scenario
            ? (rep.scenario &&
               rep.scenario->sameScenario(*expect.scenario))
            : (!rep.scenario && rep.workload == expect.workload);
    REGATE_CHECK(identity_ok && rep.gen == expect.gen &&
                     rep.gatingParams() == expect.params &&
                     (!expect.hasSetup || rep.setup == expect.setup),
                 "result ", index, " is for ", caseName(rep), "/",
                 arch::generationName(rep.gen),
                 " with different case parameters than this "
                 "binary's grid expects — wrong results file?");
}

}  // namespace detail

/**
 * Run the binary's sweep grid honoring the sharding CLI: shard mode
 * simulates only this process's slice, writes the shard JSON, and
 * exits; --from mode loads previously computed results instead of
 * simulating. The default is the plain in-process parallel sweep.
 */
inline std::vector<sim::WorkloadReport>
runGrid(const std::vector<sim::SweepCase> &grid)
{
    const auto &cli = benchCli();
    detail::maybePrintCasesAndExit(grid.size());
    if (cli.fromFiles()) {
        return detail::orDie("--from", [&] {
            auto merged = sim::mergeRunShards(
                detail::loadShardDocs(cli.fromPaths));
            REGATE_CHECK(merged.size() == grid.size(),
                         "results cover ", merged.size(),
                         " cases but this binary's grid has ",
                         grid.size());
            for (std::size_t i = 0; i < merged.size(); ++i)
                detail::checkCaseIdentity(merged[i], grid[i], i);
            return merged;
        });
    }
    if (cli.sharded()) {
        auto range = sim::shardRange(grid.size(), cli.shardIndex,
                                     cli.shardCount);
        detail::workerStart("run", range, grid.size());
        auto sweep_start = obs::monotonicUs();
        auto results =
            sweeper().run(sim::shardGrid(grid, cli.shardIndex,
                                         cli.shardCount),
                          detail::traceProgress(
                              detail::workerProgress(), sweep_start));
        detail::traceGridDone("grid.run", sweep_start,
                              range.end - range.begin);
        detail::orDie("--out", [&] {
            auto doc =
                sim::writeRunShard(results, range.begin, grid.size(),
                                   cli.shardIndex, cli.shardCount,
                                   cli.specDigest);
            detail::writeFile(cli.outPath, doc);
            detail::workerDone(cli.outPath, doc);
            return 0;
        });
        std::exit(0);
    }
    auto sweep_start = obs::monotonicUs();
    auto results =
        sweeper().run(grid, detail::traceProgress({}, sweep_start));
    detail::traceGridDone("grid.run", sweep_start, grid.size());
    return results;
}

/** SLO-search counterpart of runGrid (the fig02/table4 path). */
inline std::vector<sim::SloResult>
searchGrid(const std::vector<sim::SweepCase> &grid)
{
    const auto &cli = benchCli();
    detail::maybePrintCasesAndExit(grid.size());
    if (cli.fromFiles()) {
        return detail::orDie("--from", [&] {
            auto merged = sim::mergeSearchShards(
                detail::loadShardDocs(cli.fromPaths));
            REGATE_CHECK(merged.size() == grid.size(),
                         "results cover ", merged.size(),
                         " cases but this binary's grid has ",
                         grid.size());
            // The winning report keeps the searched case's identity
            // (the search only varies the setup).
            for (std::size_t i = 0; i < merged.size(); ++i) {
                sim::SweepCase expect = grid[i];
                expect.hasSetup = false;
                detail::checkCaseIdentity(merged[i].report, expect,
                                          i);
            }
            return merged;
        });
    }
    if (cli.sharded()) {
        auto range = sim::shardRange(grid.size(), cli.shardIndex,
                                     cli.shardCount);
        detail::workerStart("search", range, grid.size());
        auto sweep_start = obs::monotonicUs();
        auto results =
            sweeper().search(sim::shardGrid(grid, cli.shardIndex,
                                            cli.shardCount),
                             detail::traceProgress(
                                 detail::workerProgress(),
                                 sweep_start));
        detail::traceGridDone("grid.search", sweep_start,
                              range.end - range.begin);
        detail::orDie("--out", [&] {
            auto doc = sim::writeSearchShard(
                results, range.begin, grid.size(), cli.shardIndex,
                cli.shardCount, cli.specDigest);
            detail::writeFile(cli.outPath, doc);
            detail::workerDone(cli.outPath, doc);
            return 0;
        });
        std::exit(0);
    }
    auto sweep_start = obs::monotonicUs();
    auto results = sweeper().search(
        grid, detail::traceProgress({}, sweep_start));
    detail::traceGridDone("grid.search", sweep_start, grid.size());
    return results;
}

/** Simulate (workload, gen) pairs in parallel, input-ordered. */
inline std::vector<sim::WorkloadReport>
simulateAll(const std::vector<models::Workload> &workloads,
            const std::vector<arch::NpuGeneration> &gens,
            const arch::GatingParams &params = {})
{
    return runGrid(sim::makeGrid(workloads, gens, params));
}

/**
 * One entry of a binary's workload axis: a paper workload (default
 * axis, or a `--spec` scenario identical to one) or a registry-driven
 * custom scenario. The figure binaries iterate this instead of the
 * Workload enum, so `--spec FILE` swaps the whole axis without
 * touching any rendering code.
 */
struct Scenario
{
    /** The paper workload; authoritative only when builtin. */
    models::Workload workload{};

    /** The spec scenario; null on the default (enum) axis. */
    std::shared_ptr<const models::ScenarioSpec> spec;

    /**
     * True when the identity is `workload` — the default axis, or a
     * spec scenario normalized onto the paper workload it duplicates
     * (models::builtinWorkloadOf), which keeps spec-driven output of
     * built-in scenarios byte-identical to the enum-driven run.
     */
    bool builtin = true;

    std::string
    name() const
    {
        return builtin ? models::workloadName(workload) : spec->name;
    }

    std::string
    familyLabel() const
    {
        return builtin
                   ? models::workloadFamilyName(
                         models::familyOf(workload))
                   : models::scenarioFamilyLabel(*spec);
    }

    models::WorkUnit
    unit() const
    {
        return builtin ? models::workUnitOf(workload)
                       : models::scenarioWorkUnit(*spec);
    }

    std::string unitLabel() const
    {
        return models::workUnitName(unit());
    }
};

/**
 * The binary's workload axis: @p defaults wrapped as builtin
 * scenarios, or — under `--spec FILE` — the spec's scenarios (those
 * identical to a paper workload normalized onto it).
 */
inline std::vector<Scenario>
workloadAxis(const std::vector<models::Workload> &defaults)
{
    const auto &cli = benchCli();
    std::vector<Scenario> axis;
    if (!cli.hasSpec()) {
        axis.reserve(defaults.size());
        for (auto w : defaults)
            axis.push_back(Scenario{w, nullptr, true});
        return axis;
    }
    axis.reserve(cli.scenarios.size());
    for (const auto &spec : cli.scenarios) {
        Scenario s;
        s.spec = spec;
        s.builtin = models::builtinWorkloadOf(*spec, &s.workload);
        axis.push_back(std::move(s));
    }
    return axis;
}

/**
 * The sweep case of one axis entry on @p gen: spec-backed entries go
 * through sim::scenarioCase (gating overlays + builtin
 * normalization); default-axis entries are the plain enum case.
 */
inline sim::SweepCase
caseFor(const Scenario &s, arch::NpuGeneration gen,
        const arch::GatingParams &params = {})
{
    if (s.spec)
        return sim::scenarioCase(s.spec, gen, params);
    sim::SweepCase c;
    c.workload = s.workload;
    c.gen = gen;
    c.params = params;
    return c;
}

/** Dense (axis x generations) grid, axis-major (see sim::makeGrid). */
inline std::vector<sim::SweepCase>
makeGrid(const std::vector<Scenario> &axis,
         const std::vector<arch::NpuGeneration> &gens,
         const arch::GatingParams &params = {})
{
    std::vector<sim::SweepCase> grid;
    grid.reserve(axis.size() * gens.size());
    for (const auto &s : axis) {
        for (auto gen : gens)
            grid.push_back(caseFor(s, gen, params));
    }
    return grid;
}

/** simulateAll over a workload axis (the `--spec`-aware spelling). */
inline std::vector<sim::WorkloadReport>
simulateAll(const std::vector<Scenario> &axis,
            const std::vector<arch::NpuGeneration> &gens,
            const arch::GatingParams &params = {})
{
    return runGrid(makeGrid(axis, gens, params));
}

/** One case fully re-simulated with every cache disabled (fig16). */
inline sim::WorkloadReport
simulateUncached(const sim::SweepCase &c)
{
    if (c.scenario)
        return sim::simulateScenarioUncached(
            c.scenario, c.gen, c.params,
            c.hasSetup ? &c.setup : nullptr);
    return sim::simulateWorkloadUncached(
        c.workload, c.gen, c.params, c.hasSetup ? &c.setup : nullptr);
}

/**
 * Walk simulateAll results in consumption order: returns the report
 * at @p idx and advances it, checking the report really is the
 * (workload, gen) the caller's loop expects — so a consumption loop
 * that falls out of step with makeGrid's workload-major grid order
 * fails loudly instead of silently showing another case's numbers.
 */
inline const sim::WorkloadReport &
reportFor(const std::vector<sim::WorkloadReport> &reports,
          std::size_t &idx, models::Workload w,
          arch::NpuGeneration gen)
{
    const auto &rep = reports.at(idx++);
    REGATE_CHECK(rep.workload == w && rep.gen == gen,
                 "report order mismatch at index ", idx - 1,
                 ": expected ", models::workloadName(w), "/",
                 arch::generationName(gen), ", got ",
                 models::workloadName(rep.workload), "/",
                 arch::generationName(rep.gen));
    return rep;
}

/** reportFor over a workload-axis entry (enum or custom scenario). */
inline const sim::WorkloadReport &
reportFor(const std::vector<sim::WorkloadReport> &reports,
          std::size_t &idx, const Scenario &s, arch::NpuGeneration gen)
{
    const auto &rep = reports.at(idx++);
    bool identity_ok =
        s.builtin ? (!rep.scenario && rep.workload == s.workload)
                  : (rep.scenario &&
                     rep.scenario->sameScenario(*s.spec));
    REGATE_CHECK(identity_ok && rep.gen == gen,
                 "report order mismatch at index ", idx - 1,
                 ": expected ", s.name(), "/",
                 arch::generationName(gen), ", got ",
                 detail::caseName(rep), "/",
                 arch::generationName(rep.gen));
    return rep;
}

/**
 * Print the standard bench banner — except in `--cases` mode (the
 * query must print a bare number) and shard mode (results go to
 * --out and stdout belongs to the worker protocol).
 */
inline void
banner(const std::string &artifact, const std::string &caption)
{
    if (benchCli().casesOnly || benchCli().sharded())
        return;
    std::cout << "==============================================="
                 "=============\n"
              << artifact << ": " << caption << "\n"
              << "==============================================="
                 "=============\n";
}

/** The generations most figures sweep (A..D; E only in Fig. 23). */
inline std::vector<arch::NpuGeneration>
paperGenerations()
{
    return {arch::NpuGeneration::A, arch::NpuGeneration::B,
            arch::NpuGeneration::C, arch::NpuGeneration::D};
}

/** The §6.5 sensitivity workload set. */
inline std::vector<models::Workload>
sensitivityWorkloads()
{
    return {models::Workload::Train405B, models::Workload::Prefill405B,
            models::Workload::Decode405B, models::Workload::DlrmL,
            models::Workload::DiTXL};
}

/** Short generation label ("A".."E"). */
inline std::string
genLabel(arch::NpuGeneration gen)
{
    return arch::generationName(gen);
}

}  // namespace bench
}  // namespace regate

#endif  // REGATE_BENCH_BENCH_UTIL_H
