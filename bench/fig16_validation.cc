/**
 * @file
 * Fig. 16: simulator validation. The paper validates its simulator
 * against real TPUv4 chips (R^2 > 0.97). No TPUs exist here, so the
 * substitution (DESIGN.md) validates the analytical tile model
 * against the cycle-accurate systolic-array simulator over random
 * operator shapes, and whole-model op durations against an
 * independent re-simulation, reporting the same R^2 metric.
 */

#include "bench/bench_util.h"
#include "common/prng.h"
#include "common/stats.h"
#include "sa/sa_analytical.h"
#include "sa/systolic_array.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 16",
                  "model validation: analytical vs cycle-accurate "
                  "(R^2, paper reports R^2 > 0.97 vs real TPUv4)");

    TablePrinter t({"Validation target", "Samples", "R^2"});

    // Per-operator compute cycles: closed form vs cycle-accurate sim.
    {
        Prng rng(2025);
        std::vector<double> xs, ys;
        for (int i = 0; i < 60; ++i) {
            int w = 4 + static_cast<int>(rng.uniform(0, 12));
            int m = 1 + static_cast<int>(rng.uniform(0, 48));
            int k = 1 + static_cast<int>(rng.uniform(0, w - 1));
            int n = 1 + static_cast<int>(rng.uniform(0, w - 1));
            sa::Matrix wm(k, n), xm(m, k);
            for (int a = 0; a < k; ++a)
                for (int b = 0; b < n; ++b)
                    wm.at(a, b) = 1.0 + rng.uniform(0, 7);
            for (int a = 0; a < m; ++a)
                for (int b = 0; b < k; ++b)
                    xm.at(a, b) = rng.uniform(0, 9);
            sa::SystolicArray sim(w, true);
            sim.loadWeights(wm);
            sim.run(xm);
            xs.push_back(
                static_cast<double>(sim.stats().computeCycles));
            ys.push_back(static_cast<double>(
                sa::analyzeTile(m, k, n, w).computeCycles));
        }
        t.addRow({"MatMul cycles (cycle-accurate vs analytical)",
                  "60", TablePrinter::fmt(stats::r2(xs, ys), 4)});
    }

    // Per-PE energy-state accounting.
    {
        Prng rng(77);
        std::vector<double> xs, ys;
        for (int i = 0; i < 40; ++i) {
            int w = 4 + static_cast<int>(rng.uniform(0, 8));
            int m = 1 + static_cast<int>(rng.uniform(0, 32));
            int k = 1 + static_cast<int>(rng.uniform(0, w - 1));
            int n = 1 + static_cast<int>(rng.uniform(0, w - 1));
            sa::Matrix wm(k, n), xm(m, k);
            for (int a = 0; a < k; ++a)
                for (int b = 0; b < n; ++b)
                    wm.at(a, b) = 1.0;
            for (int a = 0; a < m; ++a)
                for (int b = 0; b < k; ++b)
                    xm.at(a, b) = 1.0;
            sa::SystolicArray sim(w, true);
            sim.loadWeights(wm);
            sim.run(xm);
            xs.push_back(
                static_cast<double>(sim.stats().peOnCycles));
            ys.push_back(static_cast<double>(
                sa::analyzeTile(m, k, n, w).peOnCycles));
        }
        t.addRow({"PE ON-cycles (cycle-accurate vs analytical)",
                  "40", TablePrinter::fmt(stats::r2(xs, ys), 4)});
    }

    // Whole-model operator durations across the workload suite: an
    // independent re-simulation (memoization off, private engine)
    // must reproduce the memoized run. Both passes fan out on the
    // sweep pool.
    const std::vector<models::Workload> suite = {
        models::Workload::Prefill13B, models::Workload::Decode13B,
        models::Workload::Prefill70B, models::Workload::Decode70B};
    auto axis = bench::workloadAxis(suite);
    auto cached = bench::simulateAll(axis, {arch::NpuGeneration::D});
    std::vector<sim::SweepCase> recheck;
    for (const auto &s : axis)
        recheck.push_back(bench::caseFor(s, arch::NpuGeneration::D));
    auto independent = sim::parallelMapOrdered(
        bench::sweeper().pool(), recheck,
        [](const sim::SweepCase &c) {
            return bench::simulateUncached(c);
        });
    for (std::size_t i = 0; i < axis.size(); ++i) {
        std::vector<double> xs, ys;
        for (const auto &rec : cached[i].run().opRecords)
            xs.push_back(static_cast<double>(rec.duration()));
        for (const auto &rec : independent[i].run().opRecords)
            ys.push_back(static_cast<double>(rec.duration()));
        t.addRow({axis[i].name() + " op durations",
                  std::to_string(xs.size()),
                  TablePrinter::fmt(stats::r2(xs, ys), 4)});
    }

    t.print(std::cout);
    std::cout << "Substitution note: the paper's profiled-vs-"
                 "simulated TPUv4 axes are replaced by cycle-"
                 "accurate-vs-analytical (see DESIGN.md)\n";
    return 0;
}
