/**
 * @file
 * Fig. 9: HBM temporal utilization per workload and generation.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 9", "HBM temporal utilization");

    TablePrinter t({"Workload", "A", "B", "C", "D"});
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports = bench::simulateAll(axis, bench::paperGenerations());
    std::size_t idx = 0;
    for (const auto &s : axis) {
        std::vector<std::string> cells = {s.name()};
        for (auto gen : bench::paperGenerations()) {
            const auto &rep = bench::reportFor(reports, idx, s, gen);
            cells.push_back(TablePrinter::pct(rep.run().temporalUtil(arch::Component::Hbm), 1));
        }
        t.addRow(cells);
    }
    t.print(std::cout);
    std::cout << "Paper shape: ~100% for decode, 10-30% for prefill/training, low for diffusion\n";
    return 0;
}
