/**
 * @file
 * regate_agent: the per-host end of a remote worker fleet. Run one
 * on every machine that should contribute worker slots to an
 * orchestrated sweep, then point `regate_orch --host` at them:
 *
 *     hostA$ ./regate_agent --bin ./fig02_energy_efficiency \
 *                --port 9300 --slots 8
 *     drive$ ./regate_orch --bin ./fig02_energy_efficiency \
 *                --dir /tmp/fig02_fleet --workers 4 \
 *                --host hostA:9300 --render > fig02.txt
 *
 * The agent probes the target with `--cases` at startup and refuses
 * binaries that do not speak the shard protocol (exit 2), exactly
 * like the orchestrator. Event lines go to stderr — including the
 * `listening on port N` line scripts parse when using `--port 0`.
 *
 * `--join host:port` inverts the connection: the agent dials an
 * orchestrator's `--join-port` listener and offers its slots
 * mid-sweep, re-dialing with backoff if the driver is not up yet
 * (so join agents can start first).
 *
 * With `--secret-file` (or REGATE_FLEET_SECRET) every hello runs
 * the HMAC challenge–response of net/agent_protocol.h; without one
 * the hello is plaintext — tunnel the port over ssh when the
 * network is not trusted (see bench/README.md "Remote fleets").
 */

#include <climits>
#include <csignal>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>

#include <unistd.h>

#include "bench/cli_util.h"
#include "net/agent.h"

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &msg)
{
    std::cerr << argv0 << ": " << msg << "\n"
              << "usage: " << argv0
              << " --bin FIGURE_BINARY [--port P=0 (ephemeral)]\n"
              << "    [--spec FILE (scenario spec the workers run; "
                 "must match the driver's)]\n"
              << "    [--slots N=2] [--dir WORK_DIR=tmp]\n"
              << "    [--max-sessions K=0 (serve forever)]\n"
              << "    [--join host:port (dial an orchestrator's "
                 "--join-port instead of listening)]\n"
              << "    [--secret-file PATH (HMAC-authenticate the "
                 "hello; or REGATE_FLEET_SECRET)]\n"
              << "    [--trace-out trace.json (Chrome/Perfetto "
                 "timeline of agent sessions)]\n";
    std::exit(2);
}

/** Parse "host:port" for --join; exits with usage on garbage. */
void
parseJoinSpec(const char *argv0, const std::string &spec,
              regate::net::AgentOptions *opt)
{
    auto colon = spec.rfind(':');
    long port = 0;
    if (colon == std::string::npos || colon == 0 ||
        !regate::bench::parseLongArg(spec.substr(colon + 1).c_str(),
                                     1, 65535, &port))
        usage(argv0, "bad --join '" + spec +
                         "' (want host:port)");
    opt->joinHost = spec.substr(0, colon);
    opt->joinPort = static_cast<std::uint16_t>(port);
}

}  // namespace

int
main(int argc, char **argv)
{
    regate::net::AgentOptions opt;
    opt.events = &std::cerr;

    auto intArg = [&](int &i, const char *flag) {
        return regate::bench::intFlagArg(
            argc, argv, i, flag,
            [&](const std::string &msg) { usage(argv[0], msg); });
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--bin") {
            if (++i >= argc)
                usage(argv[0], "--bin needs a value");
            opt.bin = argv[i];
        } else if (arg == "--dir") {
            if (++i >= argc)
                usage(argv[0], "--dir needs a value");
            opt.dir = argv[i];
        } else if (arg == "--spec") {
            if (++i >= argc)
                usage(argv[0], "--spec needs a value");
            opt.specFile = argv[i];
        } else if (arg == "--port") {
            int port = intArg(i, "--port");
            if (port < 0 || port > 65535)
                usage(argv[0], "--port must be in [0, 65535]");
            opt.port = static_cast<std::uint16_t>(port);
        } else if (arg == "--slots") {
            opt.slots = intArg(i, "--slots");
        } else if (arg == "--max-sessions") {
            opt.maxSessions = intArg(i, "--max-sessions");
        } else if (arg == "--join") {
            if (++i >= argc)
                usage(argv[0], "--join needs a value");
            parseJoinSpec(argv[0], argv[i], &opt);
        } else if (arg == "--secret-file") {
            if (++i >= argc)
                usage(argv[0], "--secret-file needs a value");
            opt.secretFile = argv[i];
        } else if (arg == "--trace-out") {
            if (++i >= argc)
                usage(argv[0], "--trace-out needs a value");
            opt.traceOut = argv[i];
        } else {
            usage(argv[0], "unknown argument '" + arg + "'");
        }
    }
    if (opt.bin.empty())
        usage(argv[0], "--bin is required");
    if (opt.slots <= 0)
        usage(argv[0], "--slots must be positive");
    if (opt.maxSessions < 0)
        usage(argv[0], "--max-sessions must be >= 0");
    if (opt.dir.empty())
        opt.dir = (std::filesystem::temp_directory_path() /
                   ("regate_agent_" + std::to_string(::getpid())))
                      .string();

    // A driver that vanishes mid-send must surface as a failed
    // send on that connection, not kill the whole agent.
    std::signal(SIGPIPE, SIG_IGN);

    return regate::net::runAgent(opt);
}
