/**
 * @file
 * Fig. 2: energy efficiency (J/iter, J/token, J/request, J/image) of
 * every workload on NPU generations A..D, each at its most
 * energy-efficient SLO-compliant configuration; relaxed-SLO configs
 * are labeled like the paper's "2x" bar annotations.
 */

#include "bench/bench_util.h"
#include "sim/slo.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 2",
                  "energy efficiency across NPU generations "
                  "(NoPG, duty cycle 60%, PUE 1.1)");

    const auto families = {models::WorkloadFamily::LlmTraining,
                           models::WorkloadFamily::LlmPrefill,
                           models::WorkloadFamily::LlmDecode,
                           models::WorkloadFamily::DlrmInference,
                           models::WorkloadFamily::StableDiffusion};

    // SLO-search the whole (workload x generation) grid in parallel;
    // results come back in grid order, so printing stays grouped by
    // family exactly as the serial loop produced it.
    std::vector<models::Workload> ordered;
    for (auto family : families)
        for (auto w : models::workloadsOf(family))
            ordered.push_back(w);
    auto grid = sim::makeGrid(ordered, bench::paperGenerations());
    auto results = bench::searchGrid(grid);

    std::size_t idx = 0;
    for (auto family : families) {
        std::cout << "\n-- " << models::workloadFamilyName(family)
                  << " --\n";
        TablePrinter t({"Workload", "Gen", "Chips", "SLO",
                        "J/unit", "Unit"});
        for (auto w : models::workloadsOf(family)) {
            for (auto gen : bench::paperGenerations()) {
                (void)gen;
                const auto &res = results.at(idx++);
                t.addRow({models::workloadName(w),
                          bench::genLabel(res.report.gen),
                          std::to_string(res.setup.chips),
                          TablePrinter::fmt(res.sloRatio, 0) + "x",
                          TablePrinter::eng(res.energyPerUnit, 3),
                          models::workUnitName(
                              models::workUnitOf(w))});
            }
            t.addSeparator();
        }
        t.print(std::cout);
    }
    return 0;
}
