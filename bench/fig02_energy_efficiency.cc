/**
 * @file
 * Fig. 2: energy efficiency (J/iter, J/token, J/request, J/image) of
 * every workload on NPU generations A..D, each at its most
 * energy-efficient SLO-compliant configuration; relaxed-SLO configs
 * are labeled like the paper's "2x" bar annotations.
 */

#include "bench/bench_util.h"
#include "sim/slo.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 2",
                  "energy efficiency across NPU generations "
                  "(NoPG, duty cycle 60%, PUE 1.1)");

    // SLO-search the whole (workload x generation) grid in parallel;
    // results come back in grid order, so printing stays grouped by
    // family exactly as the serial loop produced it. The axis is the
    // 17 paper workloads (already in family order), or the scenarios
    // of a `--spec` file.
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto grid = bench::makeGrid(axis, bench::paperGenerations());
    auto results = bench::searchGrid(grid);

    std::size_t idx = 0;
    for (std::size_t i = 0; i < axis.size();) {
        auto family = axis[i].familyLabel();
        std::cout << "\n-- " << family << " --\n";
        TablePrinter t({"Workload", "Gen", "Chips", "SLO",
                        "J/unit", "Unit"});
        for (; i < axis.size() && axis[i].familyLabel() == family;
             ++i) {
            const auto &s = axis[i];
            for (auto gen : bench::paperGenerations()) {
                (void)gen;
                const auto &res = results.at(idx++);
                t.addRow({s.name(),
                          bench::genLabel(res.report.gen),
                          std::to_string(res.setup.chips),
                          TablePrinter::fmt(res.sloRatio, 0) + "x",
                          TablePrinter::eng(res.energyPerUnit, 3),
                          s.unitLabel()});
            }
            t.addSeparator();
        }
        t.print(std::cout);
    }
    return 0;
}
