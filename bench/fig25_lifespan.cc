/**
 * @file
 * Fig. 25: total carbon per work unit over a 10-year horizon as a
 * function of device lifespan, with and without power gating. The
 * optimum (lowest total) lifespan extends under ReGate because the
 * operational term shrinks.
 */

#include "bench/bench_util.h"
#include "carbon/lifespan.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using sim::Policy;
    bench::banner("Figure 25",
                  "carbon per unit vs device lifespan (10-year "
                  "horizon)");

    auto axis = bench::workloadAxis(bench::sensitivityWorkloads());
    auto reports =
        bench::simulateAll(axis, {arch::NpuGeneration::D});
    std::size_t idx = 0;
    for (const auto &s : axis) {
        const auto &rep = bench::reportFor(
            reports, idx, s, arch::NpuGeneration::D);
        double factor =
            s.builtin ? carbon::annualEfficiencyFactor(s.workload)
                      : carbon::annualEfficiencyFactor(s.spec);
        auto nopg = carbon::analyzeLifespan(rep, Policy::NoPG, factor);
        auto full = carbon::analyzeLifespan(rep, Policy::Full, factor);

        std::cout << "\n-- " << s.name()
                  << " (annual efficiency factor "
                  << TablePrinter::fmt(factor, 3) << ") --\n";
        TablePrinter t({"Lifespan (yr)", "Embodied/unit",
                        "NoPG op/unit", "NoPG total",
                        "ReGate-Full total"});
        for (std::size_t i = 0; i < nopg.points.size(); ++i) {
            const auto &n = nopg.points[i];
            const auto &f = full.points[i];
            std::string label = std::to_string(n.lifespanYears);
            if (n.lifespanYears == nopg.optimalYears)
                label += " *NoPG";
            if (f.lifespanYears == full.optimalYears)
                label += " *Full";
            t.addRow({label,
                      TablePrinter::eng(n.embodiedPerUnit * 1e3, 3),
                      TablePrinter::eng(n.operationalPerUnit * 1e3,
                                        3),
                      TablePrinter::eng(n.totalPerUnit() * 1e3, 3),
                      TablePrinter::eng(f.totalPerUnit() * 1e3, 3)});
        }
        t.print(std::cout);
        std::cout << "Optimal lifespan: NoPG " << nopg.optimalYears
                  << " yr -> ReGate-Full " << full.optimalYears
                  << " yr (gCO2e per unit)\n";
    }
    std::cout << "\nPaper: optimal lifespan 4-8 yr without gating, "
                 "5-9 yr with ReGate (§6.6)\n";
    return 0;
}
