/**
 * @file
 * google-benchmark micro-benchmarks of the simulator substrate: the
 * cycle-accurate systolic array, the analytical SA model, the gating
 * engine, timeline composition, the SRAM allocator, collective cost
 * evaluation, and a whole-workload simulation.
 */

#include <benchmark/benchmark.h>

#include "common/prng.h"
#include "core/gating_engine.h"
#include "ici/collective.h"
#include "mem/sram_allocator.h"
#include "sa/sa_analytical.h"
#include "sa/systolic_array.h"
#include "sim/slo.h"

namespace {

using namespace regate;

void
BM_SystolicArrayCycleSim(benchmark::State &state)
{
    const int width = static_cast<int>(state.range(0));
    sa::Matrix w(width, width), x(2 * width, width);
    Prng rng(1);
    for (int i = 0; i < width; ++i)
        for (int j = 0; j < width; ++j)
            w.at(i, j) = 1.0 + rng.uniform(0, 7);
    for (int i = 0; i < 2 * width; ++i)
        for (int j = 0; j < width; ++j)
            x.at(i, j) = rng.uniform(0, 9);
    for (auto _ : state) {
        sa::SystolicArray sim(width, true);
        sim.loadWeights(w);
        benchmark::DoNotOptimize(sim.run(x));
    }
    state.SetItemsProcessed(state.iterations() * 2 * width * width *
                            width);
}
BENCHMARK(BM_SystolicArrayCycleSim)->Arg(8)->Arg(16)->Arg(32);

void
BM_SaAnalytical(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sa::analyzeMatmul(65536, 8192, 1280, 128));
    }
}
BENCHMARK(BM_SaAnalytical);

void
BM_GatingEngineEvaluate(benchmark::State &state)
{
    arch::GatingParams params;
    auto t = core::ActivityTimeline::periodic(1u << 20, 0, 8, 1024);
    core::UnitSpec spec{arch::GatedUnit::Vu, 5.0, 1e-9};
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::evaluateTimeline(
            t, spec, core::GatingMode::SwExact, params));
    }
}
BENCHMARK(BM_GatingEngineEvaluate);

void
BM_TimelineAppend(benchmark::State &state)
{
    auto unit = core::ActivityTimeline::periodic(4096, 3, 16, 128);
    for (auto _ : state) {
        core::ActivityTimeline acc;
        for (int i = 0; i < 256; ++i)
            acc.append(unit);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_TimelineAppend);

void
BM_TimelineRepeated(benchmark::State &state)
{
    auto unit = core::ActivityTimeline::periodic(4096, 3, 16, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.repeated(1u << 20));
}
BENCHMARK(BM_TimelineRepeated);

void
BM_SramAllocator(benchmark::State &state)
{
    Prng rng(7);
    for (auto _ : state) {
        mem::SramAllocator alloc(128u << 20, 4096);
        for (int i = 0; i < 200; ++i) {
            std::uint64_t start = i;
            try {
                alloc.allocate((1 + rng.uniform(0, 63)) << 12, start,
                               start + 1 + rng.uniform(0, 9));
            } catch (const ConfigError &) {
            }
        }
        benchmark::DoNotOptimize(alloc.peakBytes());
    }
}
BENCHMARK(BM_SramAllocator);

void
BM_CollectiveModel(benchmark::State &state)
{
    const auto &cfg = arch::npuConfig(arch::NpuGeneration::D);
    ici::Torus torus = ici::Torus::forChips(cfg, 64);
    ici::CollectiveModel coll(cfg, torus);
    for (auto _ : state) {
        benchmark::DoNotOptimize(coll.seconds(
            ici::CollectiveKind::AllReduce, 256u << 20));
    }
}
BENCHMARK(BM_CollectiveModel);

void
BM_WholeWorkloadSimulation(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::simulateWorkload(
            models::Workload::Prefill70B, arch::NpuGeneration::D));
    }
}
BENCHMARK(BM_WholeWorkloadSimulation);

void
BM_SloSearch(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::findBestSetup(
            models::Workload::DlrmM, arch::NpuGeneration::D));
    }
}
BENCHMARK(BM_SloSearch);

}  // namespace
