/**
 * @file
 * google-benchmark micro-benchmarks of the simulator substrate plus
 * the core-speedup trajectory cases.
 *
 * Besides the registered google-benchmark cases, main() times the
 * current hot-path implementations against faithful replicas of the
 * seed algorithms (linear-scan gap multisets, O(repeat) seam removal,
 * uncached operator simulation, serial sweeps) on a repeated-block
 * LLM decode workload, verifies the results are identical, and writes
 * the measurements to BENCH_core.json so CI can track the perf
 * trajectory. Run with --benchmark_filter=... to select
 * google-benchmark cases; pass --core-only to skip them entirely.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "common/prng.h"
#include "compiler/compiler.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "core/gating_engine.h"
#include "ici/collective.h"
#include "ici/topology.h"
#include "mem/sram_allocator.h"
#include "sa/sa_analytical.h"
#include "sa/systolic_array.h"
#include "sim/graph_cache.h"
#include "sim/slo.h"
#include "sim/sweep.h"

namespace {

using namespace regate;
using core::ActivityTimeline;
using core::GapGroup;

// ====================================================================
// Seed-algorithm replicas (the pre-overhaul hot path), used as the
// timing baseline. These mirror the original ActivityTimeline code:
// addGap linear-scans the multiset, append re-sorts it, repeated
// removes seam gaps one pair per iteration.
// ====================================================================

struct SeedTimeline
{
    Cycles span = 0;
    Cycles active = 0;
    std::uint64_t activations = 0;
    std::vector<GapGroup> gaps;
    Cycles lead = 0;
    Cycles trail = 0;
};

SeedTimeline
toSeed(const ActivityTimeline &t)
{
    return {t.span(),        t.activeCycles(), t.activations(),
            t.gaps(),        t.leadingIdle(),  t.trailingIdle()};
}

void
seedAddGap(std::vector<GapGroup> &gaps, Cycles length,
           std::uint64_t count)
{
    if (length == 0 || count == 0)
        return;
    for (auto &g : gaps) {
        if (g.length == length) {
            g.count += count;
            return;
        }
    }
    gaps.push_back({length, count});
}

void
seedRemoveOneGap(std::vector<GapGroup> &gaps, Cycles length)
{
    if (length == 0)
        return;
    for (auto it = gaps.begin(); it != gaps.end(); ++it) {
        if (it->length == length) {
            if (--it->count == 0)
                gaps.erase(it);
            return;
        }
    }
    throw LogicError("seedRemoveOneGap: no gap of requested length");
}

void
seedSortGaps(std::vector<GapGroup> &gaps)
{
    std::sort(gaps.begin(), gaps.end(),
              [](const GapGroup &a, const GapGroup &b) {
                  return a.length < b.length;
              });
}

void
seedAppend(SeedTimeline &a, const SeedTimeline &b)
{
    if (b.span == 0)
        return;
    if (a.span == 0) {
        a = b;
        return;
    }
    bool a_ends_active = a.active > 0 && a.trail == 0;
    bool b_starts_active = b.active > 0 && b.lead == 0;
    bool a_all_idle = a.active == 0;
    bool b_all_idle = b.active == 0;

    Cycles seam = a.trail + b.lead;
    seedRemoveOneGap(a.gaps, a.trail);
    std::vector<GapGroup> b_gaps = b.gaps;
    seedRemoveOneGap(b_gaps, b.lead);
    for (const auto &g : b_gaps)
        seedAddGap(a.gaps, g.length, g.count);
    seedAddGap(a.gaps, seam, 1);
    seedSortGaps(a.gaps);

    a.activations += b.activations;
    if (seam == 0 && a_ends_active && b_starts_active)
        a.activations -= 1;
    a.span += b.span;
    a.active += b.active;
    a.lead = a_all_idle ? seam : a.lead;
    a.trail = b_all_idle ? seam : b.trail;
}

SeedTimeline
seedRepeated(const SeedTimeline &t, std::uint64_t times)
{
    if (times == 0)
        return SeedTimeline();
    if (times == 1 || t.span == 0)
        return t;

    SeedTimeline out;
    out.span = t.span * times;
    if (t.active == 0) {
        out.gaps.push_back({out.span, 1});
        out.lead = out.trail = out.span;
        return out;
    }
    out.active = t.active * times;
    out.gaps = t.gaps;
    for (auto &g : out.gaps)
        g.count *= times;

    Cycles seam = t.trail + t.lead;
    std::uint64_t seams = times - 1;
    for (std::uint64_t i = 0; i < seams; ++i) {
        seedRemoveOneGap(out.gaps, t.trail);
        seedRemoveOneGap(out.gaps, t.lead);
    }
    seedAddGap(out.gaps, seam, seams);
    seedSortGaps(out.gaps);

    out.activations = t.activations * times - (seam == 0 ? seams : 0);
    out.lead = t.lead;
    out.trail = t.trail;
    return out;
}

// ====================================================================
// Core-speedup timing harness
// ====================================================================

using Clock = std::chrono::steady_clock;

double
elapsedNs(Clock::time_point t0)
{
    return std::chrono::duration<double, std::nano>(Clock::now() - t0)
        .count();
}

struct CoreCase
{
    std::string name;
    double seed_ns = 0;
    double new_ns = 0;
    /**
     * Gated cases enforce the 5x floor here and the >20% slowdown
     * check in CI; ungated cases (pool scaling, closed-form op
     * memoization) are machine-dependent and tracked for the
     * trajectory only.
     */
    bool gated = false;
    std::vector<std::pair<std::string, double>> extras;

    double
    speedup() const
    {
        // A new time below clock resolution counts as infinitely
        // faster, not as a regression.
        return new_ns > 0 ? seed_ns / new_ns
                          : std::numeric_limits<double>::infinity();
    }
};

/**
 * Per-op component timelines and block repeats of a compiled LLM
 * decode graph: the exact inputs the engine hot path composes.
 */
struct BlockTimelines
{
    std::uint64_t repeat = 1;
    // One entry per op: the op's SA/VU/HBM/ICI timelines.
    std::vector<std::array<ActivityTimeline, 4>> ops;
};

std::vector<BlockTimelines>
decodeBlockTimelines(models::Workload w, arch::NpuGeneration gen,
                     std::uint64_t min_repeat)
{
    const auto &cfg = arch::npuConfig(gen);
    auto setup = models::defaultSetup(w, gen);
    auto compiled =
        compiler::compileGraph(models::buildGraph(w, setup), cfg);

    ici::Torus torus = ici::Torus::forChips(cfg, setup.chips);
    ici::CollectiveModel coll(cfg, torus);
    sim::OperatorSimulator op_sim(cfg, coll);

    std::vector<BlockTimelines> blocks;
    for (const auto &block : compiled.graph.blocks) {
        BlockTimelines bt;
        // The speedup case targets repeated blocks; lift small repeat
        // counts to the requested floor (>= 1024 per the perf goal).
        bt.repeat = std::max<std::uint64_t>(block.repeat, min_repeat);
        for (const auto &op : block.ops) {
            auto ex = op_sim.simulate(op);
            bt.ops.push_back({ex.timeline[arch::Component::Sa],
                              ex.timeline[arch::Component::Vu],
                              ex.timeline[arch::Component::Hbm],
                              ex.timeline[arch::Component::Ici]});
        }
        blocks.push_back(std::move(bt));
    }
    return blocks;
}

/** Compose all blocks with the seed algorithms; returns a checksum. */
std::uint64_t
composeSeed(const std::vector<BlockTimelines> &blocks)
{
    std::array<SeedTimeline, 4> run_tl;
    for (const auto &block : blocks) {
        std::array<SeedTimeline, 4> block_tl;
        for (const auto &op : block.ops)
            for (int c = 0; c < 4; ++c)
                seedAppend(block_tl[c], toSeed(op[c]));
        for (int c = 0; c < 4; ++c)
            seedAppend(run_tl[c],
                       seedRepeated(block_tl[c], block.repeat));
    }
    std::uint64_t sum = 0;
    for (const auto &t : run_tl) {
        sum += t.span + t.active + t.activations;
        for (const auto &g : t.gaps)
            sum += g.length * g.count;
    }
    return sum;
}

/** Compose all blocks with the current algorithms; same checksum. */
std::uint64_t
composeNew(const std::vector<BlockTimelines> &blocks)
{
    std::array<ActivityTimeline, 4> run_tl;
    for (const auto &block : blocks) {
        std::array<ActivityTimeline, 4> block_tl;
        for (const auto &op : block.ops)
            for (int c = 0; c < 4; ++c)
                block_tl[c].append(op[c]);
        for (int c = 0; c < 4; ++c)
            run_tl[c].append(block_tl[c].repeated(block.repeat));
    }
    std::uint64_t sum = 0;
    for (const auto &t : run_tl) {
        sum += t.span() + t.activeCycles() + t.activations();
        for (const auto &g : t.gaps())
            sum += g.length * g.count;
    }
    return sum;
}

/**
 * The headline case: compose the activity timelines of a real LLM
 * decode workload whose blocks repeat >= 1024 times, seed algorithm
 * vs current.
 */
CoreCase
caseRepeatedBlockCompose()
{
    CoreCase cc;
    cc.name = "llm_decode_block_compose";
    auto blocks = decodeBlockTimelines(models::Workload::Decode70B,
                                       arch::NpuGeneration::D, 1024);
    std::uint64_t max_repeat = 0;
    for (const auto &b : blocks)
        max_repeat = std::max(max_repeat, b.repeat);
    cc.extras.emplace_back("block_repeat_max",
                           static_cast<double>(max_repeat));

    constexpr int kPasses = 5;
    std::uint64_t seed_sum = 0, new_sum = 0;

    auto t0 = Clock::now();
    for (int i = 0; i < kPasses; ++i)
        seed_sum = composeSeed(blocks);
    cc.seed_ns = elapsedNs(t0) / kPasses;

    t0 = Clock::now();
    for (int i = 0; i < kPasses; ++i)
        new_sum = composeNew(blocks);
    cc.new_ns = elapsedNs(t0) / kPasses;

    if (seed_sum != new_sum)
        throw LogicError("seed/new timeline composition disagree");
    return cc;
}

/** Pure repeated(): seed O(repeat) seam loop vs O(log G) arithmetic. */
CoreCase
caseTimelineRepeated()
{
    CoreCase cc;
    cc.name = "timeline_repeated_64k";
    auto unit = ActivityTimeline::periodic(4096, 3, 16, 128);
    auto seed_unit = toSeed(unit);
    constexpr std::uint64_t kTimes = 1u << 16;
    constexpr int kPasses = 20;

    auto t0 = Clock::now();
    std::uint64_t sink = 0;
    for (int i = 0; i < kPasses; ++i)
        sink += seedRepeated(seed_unit, kTimes).activations;
    cc.seed_ns = elapsedNs(t0) / kPasses;

    t0 = Clock::now();
    std::uint64_t sink2 = 0;
    for (int i = 0; i < kPasses; ++i)
        sink2 += unit.repeated(kTimes).activations();
    cc.new_ns = elapsedNs(t0) / kPasses;

    if (sink != sink2)
        throw LogicError("seed/new repeated() disagree");
    return cc;
}

/**
 * Memoized rerun: re-simulating a grid point whose run is already in
 * the whole-run memo — a warm simulateWorkload, i.e. the steady-state
 * sweep path, which since the zero-copy refactor aliases the cached
 * run instead of deep-copying it — vs the seed behaviour of
 * re-running the engine with memoization disabled. The intermediate
 * warm-engine timing (operator cache hot, but the engine still
 * recomposing timelines/opRecords/policies) is kept as the
 * warm_engine_ns extra for the trajectory. Asserts the warm hits
 * perform zero WorkloadRun deep copies.
 */
CoreCase
caseEngineMemoization()
{
    CoreCase cc;
    cc.name = "engine_rerun_memoized";
    const auto gen = arch::NpuGeneration::D;
    const auto w = models::Workload::Decode70B;
    const auto &cfg = arch::npuConfig(gen);
    auto setup = models::defaultSetup(w, gen);
    auto compiled =
        compiler::compileGraph(models::buildGraph(w, setup), cfg);

    // Averaged over enough runs that the µs-scale per-run time is
    // stable for the CI trajectory check.
    constexpr int kRuns = 256;

    sim::Engine cold(cfg);
    cold.setMemoization(false);
    auto t0 = Clock::now();
    double sink = 0;
    for (int i = 0; i < kRuns; ++i) {
        auto run = cold.run(compiled.graph, setup.chips);
        sink += run.result(sim::Policy::Full).energy.busyTotal();
    }
    cc.seed_ns = elapsedNs(t0) / kRuns;

    sim::Engine warm(cfg);
    t0 = Clock::now();
    double sink2 = 0;
    std::uint64_t hits = 0;
    for (int i = 0; i < kRuns; ++i) {
        auto run = warm.run(compiled.graph, setup.chips);
        sink2 += run.result(sim::Policy::Full).energy.busyTotal();
        hits += run.opCacheHits;
    }
    cc.extras.emplace_back("warm_engine_ns", elapsedNs(t0) / kRuns);
    cc.extras.emplace_back("cache_hits", static_cast<double>(hits));
    cc.extras.emplace_back("cache_entries",
                           static_cast<double>(warm.opCache().size()));

    // The memoized rerun itself: default setup and params, so this
    // replays the exact point the engine loops above simulate.
    sim::clearSharedCaches();
    auto prime = sim::simulateWorkload(w, gen);
    auto copies_before = sim::WorkloadRun::copies();
    t0 = Clock::now();
    double sink3 = 0;
    for (int i = 0; i < kRuns; ++i) {
        auto rep = sim::simulateWorkload(w, gen);
        sink3 +=
            rep.run().result(sim::Policy::Full).energy.busyTotal();
    }
    cc.new_ns = elapsedNs(t0) / kRuns;
    if (sim::WorkloadRun::copies() != copies_before)
        throw LogicError("warm simulateWorkload copied the run");
    cc.extras.emplace_back("run_copies", 0.0);

    if (sink != sink2 || sink != sink3)
        throw LogicError("memoized rerun changed results");
    return cc;
}

/**
 * BM_WarmHitCost: per-hit cost of the warm simulateWorkload path vs
 * a faithful replica of the seed warm hit, which deep-copied the
 * memoized run — array-of-structs opRecords with one heap string per
 * record, six gap-multiset timelines, and the policy table — into
 * every report. Timed per batch of kHits hits so the measurement
 * sits well above CI's clock-resolution noise floor, and asserts the
 * new path performs zero WorkloadRun deep copies.
 */
CoreCase
caseWarmHitCost()
{
    CoreCase cc;
    cc.name = "BM_WarmHitCost";
    const auto w = models::Workload::Decode70B;
    const auto gen = arch::NpuGeneration::D;

    sim::clearSharedCaches();
    auto rep = sim::simulateWorkload(w, gen);
    const auto &run = rep.run();

    // Seed-representation replica of the memoized run: the pre-arena
    // WorkloadRun stored opRecords as a vector of structs, each with
    // its own heap-allocated name.
    struct SeedOpRecord
    {
        std::string name;
        graph::OpKind kind;
        std::uint64_t count;
        Cycles duration;
        double sramDemandBytes;
        double dynamicJ;
        double sramUsedFrac;
        arch::ComponentMap<double> activeFrac;
    };
    struct SeedRun
    {
        std::string name;
        Cycles cycles = 0;
        double seconds = 0;
        arch::ComponentMap<ActivityTimeline> timeline;
        double sramUsedIntegral = 0;
        std::vector<SeedOpRecord> opRecords;
        std::array<sim::PolicyResult, sim::kNumPolicies> policies;
    };
    SeedRun cached;
    cached.name = run.name;
    cached.cycles = run.cycles;
    cached.seconds = run.seconds;
    cached.timeline = run.timeline;
    cached.sramUsedIntegral = run.sramUsedIntegral;
    cached.policies = run.policies;
    for (auto rec : run.opRecords) {
        SeedOpRecord s;
        s.name = rec.name();
        s.kind = rec.kind();
        s.count = rec.count();
        s.duration = rec.duration();
        s.sramDemandBytes = rec.sramDemandBytes();
        s.dynamicJ = rec.dynamicJ();
        s.sramUsedFrac = rec.sramUsedFrac();
        for (auto c : arch::kAllComponents)
            s.activeFrac[c] = rec.activeFrac(c);
        cached.opRecords.push_back(std::move(s));
    }

    constexpr int kHits = 4096;
    constexpr int kPasses = 3;
    cc.extras.emplace_back("hits_per_pass",
                           static_cast<double>(kHits));
    cc.extras.emplace_back("op_records",
                           static_cast<double>(run.opRecords.size()));

    double sink_seed = 0;
    auto t0 = Clock::now();
    for (int p = 0; p < kPasses; ++p) {
        for (int i = 0; i < kHits; ++i) {
            SeedRun copy = cached;  // The seed warm hit: a deep copy.
            sink_seed += copy.seconds +
                         static_cast<double>(copy.opRecords.size());
        }
    }
    cc.seed_ns = elapsedNs(t0) / kPasses;

    auto copies_before = sim::WorkloadRun::copies();
    double sink_new = 0;
    t0 = Clock::now();
    for (int p = 0; p < kPasses; ++p) {
        for (int i = 0; i < kHits; ++i) {
            auto hit = sim::simulateWorkload(w, gen);
            sink_new +=
                hit.run().seconds +
                static_cast<double>(hit.run().opRecords.size());
        }
    }
    cc.new_ns = elapsedNs(t0) / kPasses;
    if (sim::WorkloadRun::copies() != copies_before)
        throw LogicError("warm simulateWorkload hit copied the run");
    cc.extras.emplace_back("run_copies", 0.0);

    if (sink_seed != sink_new)
        throw LogicError("seed-replica / warm-hit results disagree");
    return cc;
}

/**
 * BM_MetricsOverhead: cost of enabled telemetry on the hottest
 * steady-state path — the warm simulateWorkload hit, whose shared
 * caches mirror their counters onto obs::MetricsRegistry (a couple
 * of relaxed atomic adds per hit). seed_ns is the same batch with
 * the registry runtime-disabled, so speedup ~= 1.0 and any drop
 * below 0.98 means enabled-but-idle telemetry costs more than the
 * 2% budget. Modes alternate round-by-round and each takes its best
 * round, so drift and scheduling noise hit both sides alike.
 */
CoreCase
caseMetricsOverhead()
{
    CoreCase cc;
    cc.name = "BM_MetricsOverhead";
    const auto w = models::Workload::Decode70B;
    const auto gen = arch::NpuGeneration::D;

    sim::clearSharedCaches();
    auto prime = sim::simulateWorkload(w, gen);

    constexpr int kHits = 4096;
    constexpr int kRounds = 7;
    auto timeBatch = [&] {
        auto t0 = Clock::now();
        double sink = 0;
        for (int i = 0; i < kHits; ++i)
            sink += sim::simulateWorkload(w, gen).run().seconds;
        benchmark::DoNotOptimize(sink);
        return elapsedNs(t0);
    };

    auto best_off = std::numeric_limits<double>::infinity();
    auto best_on = best_off;
    for (int r = 0; r < kRounds; ++r) {
        obs::MetricsRegistry::setEnabled(false);
        best_off = std::min(best_off, timeBatch());
        obs::MetricsRegistry::setEnabled(true);
        best_on = std::min(best_on, timeBatch());
    }
    obs::MetricsRegistry::setEnabled(true);

    cc.seed_ns = best_off;
    cc.new_ns = best_on;
    cc.extras.emplace_back("hits_per_round",
                           static_cast<double>(kHits));
    cc.extras.emplace_back("overhead_frac",
                           best_on / best_off - 1.0);
    return cc;
}

/**
 * BM_FlightRecorderOverhead: cost of the always-on flight recorder
 * on the same warm simulateWorkload hit. By design the warm path
 * carries NO ring writes (a warm hit is ~140 ns; one Event write
 * would alone blow the budget), so enabled-vs-disabled should be
 * pure parity — this gate is what keeps it that way. A drop below
 * 0.98 means someone added flight instrumentation to the steady-
 * state hot path and it costs more than the 2% budget.
 */
CoreCase
caseFlightRecorderOverhead()
{
    CoreCase cc;
    cc.name = "BM_FlightRecorderOverhead";
    const auto w = models::Workload::Decode70B;
    const auto gen = arch::NpuGeneration::D;

    sim::clearSharedCaches();
    auto prime = sim::simulateWorkload(w, gen);

    constexpr int kHits = 4096;
    constexpr int kRounds = 7;
    auto timeBatch = [&] {
        auto t0 = Clock::now();
        double sink = 0;
        for (int i = 0; i < kHits; ++i)
            sink += sim::simulateWorkload(w, gen).run().seconds;
        benchmark::DoNotOptimize(sink);
        return elapsedNs(t0);
    };

    auto best_off = std::numeric_limits<double>::infinity();
    auto best_on = best_off;
    for (int r = 0; r < kRounds; ++r) {
        obs::FlightRecorder::setEnabled(false);
        best_off = std::min(best_off, timeBatch());
        obs::FlightRecorder::setEnabled(true);
        best_on = std::min(best_on, timeBatch());
    }
    obs::FlightRecorder::setEnabled(true);

    cc.seed_ns = best_off;
    cc.new_ns = best_on;
    cc.extras.emplace_back("hits_per_round",
                           static_cast<double>(kHits));
    cc.extras.emplace_back("overhead_frac",
                           best_on / best_off - 1.0);
    return cc;
}

/**
 * Graph/run cache: warm simulateWorkload (memoized run replayed) vs
 * cold (graph + run caches cleared before every run, so the graph is
 * rebuilt, recompiled, and re-run through the engine — the seed
 * behaviour). The operator cache is hot on both sides, isolating the
 * new cache subsystem itself, and the cold/warm reports must be
 * bitwise identical.
 */
CoreCase
caseGraphCacheWarmRun()
{
    CoreCase cc;
    cc.name = "simulate_workload_graph_cache";
    const auto w = models::Workload::Decode70B;
    const auto gen = arch::NpuGeneration::D;

    // Prime every cache once so both timed paths run with hot
    // operator memoization.
    sim::clearSharedCaches();
    auto warm_ref = sim::simulateWorkload(w, gen);

    auto energySum = [](const sim::WorkloadReport &rep) {
        double s = 0;
        for (auto p : sim::allPolicies())
            s += rep.run().result(p).energy.busyTotal();
        return s;
    };
    auto identicalRuns = [](const sim::WorkloadRun &a,
                            const sim::WorkloadRun &b) {
        bool same = a.cycles == b.cycles && a.seconds == b.seconds;
        for (auto p : sim::allPolicies()) {
            const auto &ra = a.result(p);
            const auto &rb = b.result(p);
            same = same &&
                   std::memcmp(&ra.energy, &rb.energy,
                               sizeof(ra.energy)) == 0 &&
                   ra.overheadCycles == rb.overheadCycles &&
                   ra.seconds == rb.seconds &&
                   ra.peakPowerW == rb.peakPowerW;
        }
        return same;
    };

    // Averaged over enough runs that the µs-scale per-run time is
    // stable for the CI trajectory check.
    constexpr int kRuns = 64;

    auto t0 = Clock::now();
    double sink_cold = 0;
    sim::WorkloadReport cold_rep;
    for (int i = 0; i < kRuns; ++i) {
        sim::sharedGraphCache().clear();
        sim::sharedRunCache().clear();
        cold_rep = sim::simulateWorkload(w, gen);
        sink_cold += energySum(cold_rep);
    }
    cc.seed_ns = elapsedNs(t0) / kRuns;

    t0 = Clock::now();
    double sink_warm = 0;
    sim::WorkloadReport warm_rep;
    for (int i = 0; i < kRuns; ++i) {
        warm_rep = sim::simulateWorkload(w, gen);
        sink_warm += energySum(warm_rep);
    }
    cc.new_ns = elapsedNs(t0) / kRuns;

    if (sink_cold != sink_warm ||
        !identicalRuns(cold_rep.run(), warm_rep.run()) ||
        !identicalRuns(warm_ref.run(), warm_rep.run()))
        throw LogicError("graph cache changed simulation results");
    cc.extras.emplace_back(
        "graph_cache_entries",
        static_cast<double>(sim::sharedGraphCache().size()));
    cc.extras.emplace_back(
        "run_cache_entries",
        static_cast<double>(sim::sharedRunCache().size()));
    cc.extras.emplace_back("identical", 1.0);
    return cc;
}

/**
 * Sweep runner: serial loop vs worker pool over a small grid, with a
 * bitwise equality check of the energy/overhead numbers.
 */
CoreCase
caseParallelSweep()
{
    CoreCase cc;
    cc.name = "sweep_parallel_vs_serial";
    auto grid = sim::makeGrid(
        {models::Workload::Prefill8B, models::Workload::Decode8B,
         models::Workload::DlrmS},
        {arch::NpuGeneration::C, arch::NpuGeneration::D});

    // Untimed warm-up pass to touch every code path once; each timed
    // pass then starts from cleared run/graph caches (keeping the
    // operator cache warm) so both genuinely re-simulate every grid
    // point instead of replaying the whole-run memo, and the
    // comparison isolates the worker pool.
    sim::SweepRunner::runSerial(grid);

    auto clearRunLevelCaches = [] {
        sim::sharedRunCache().clear();
        sim::sharedGraphCache().clear();
    };

    // Averaged over several passes for a stable CI trajectory.
    constexpr int kPasses = 8;

    std::vector<sim::WorkloadReport> serial;
    auto t0 = Clock::now();
    for (int i = 0; i < kPasses; ++i) {
        clearRunLevelCaches();
        serial = sim::SweepRunner::runSerial(grid);
    }
    cc.seed_ns = elapsedNs(t0) / kPasses;

    sim::SweepRunner runner;
    std::vector<sim::WorkloadReport> parallel;
    t0 = Clock::now();
    for (int i = 0; i < kPasses; ++i) {
        clearRunLevelCaches();
        parallel = runner.run(grid);
    }
    cc.new_ns = elapsedNs(t0) / kPasses;
    cc.extras.emplace_back("threads",
                           static_cast<double>(runner.threadCount()));

    bool identical = serial.size() == parallel.size();
    for (std::size_t i = 0; identical && i < serial.size(); ++i) {
        for (auto p : sim::allPolicies()) {
            const auto &a = serial[i].run().result(p);
            const auto &b = parallel[i].run().result(p);
            identical = identical &&
                        std::memcmp(&a.energy, &b.energy,
                                    sizeof(a.energy)) == 0 &&
                        a.overheadCycles == b.overheadCycles &&
                        a.seconds == b.seconds;
        }
    }
    if (!identical)
        throw LogicError("parallel sweep diverged from serial sweep");
    cc.extras.emplace_back("identical", 1.0);
    return cc;
}

bool
writeBenchJson(const std::vector<CoreCase> &cases,
               const std::string &path)
{
    std::ofstream out(path);
    out << "{\n  \"bench\": \"core\",\n  \"cases\": [\n";
    for (std::size_t i = 0; i < cases.size(); ++i) {
        const auto &c = cases[i];
        // JSON has no infinity literal; clamp the
        // below-clock-resolution case to a finite sentinel.
        out << "    {\"name\": \"" << c.name << "\", \"seed_ns\": "
            << c.seed_ns << ", \"new_ns\": " << c.new_ns
            << ", \"speedup\": " << std::min(c.speedup(), 1e12)
            << ", \"gated\": " << (c.gated ? 1 : 0);
        for (const auto &[k, v] : c.extras)
            out << ", \"" << k << "\": " << v;
        out << "}" << (i + 1 < cases.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    out.flush();
    return out.good();
}

int
runCoreCases()
{
    std::vector<CoreCase> cases;
    cases.push_back(caseTimelineRepeated());
    cases.push_back(caseRepeatedBlockCompose());
    cases.push_back(caseEngineMemoization());
    cases.push_back(caseWarmHitCost());
    cases.push_back(caseMetricsOverhead());
    cases.push_back(caseFlightRecorderOverhead());
    cases.push_back(caseGraphCacheWarmRun());
    cases.push_back(caseParallelSweep());

    std::cout << "==== core speedup cases (seed algorithm vs current) "
                 "====\n";
    bool ok = true;
    for (auto &c : cases) {
        std::cout << "  " << c.name << ": seed " << c.seed_ns / 1e6
                  << " ms, new " << c.new_ns / 1e6 << " ms, speedup "
                  << c.speedup() << "x\n";
        // The headline timeline-algebra cases, the compiled-graph
        // cache case, and the zero-copy warm-hit cases regression-
        // gate CI. The sweep case is reported for the trajectory
        // only: its scaling depends on the machine's core count.
        c.gated = c.name == "timeline_repeated_64k" ||
                  c.name == "llm_decode_block_compose" ||
                  c.name == "engine_rerun_memoized" ||
                  c.name == "BM_WarmHitCost" ||
                  c.name == "BM_MetricsOverhead" ||
                  c.name == "BM_FlightRecorderOverhead" ||
                  c.name == "simulate_workload_graph_cache";
        // BM_WarmHitCost is exempt from the in-process 5x floor: its
        // seed baseline is a single deep copy of the cached run, and
        // the warm hit beating even that ~3x is the point being
        // pinned — the >=5x whole-path win is enforced through
        // engine_rerun_memoized (cold re-simulation vs warm replay).
        // BM_MetricsOverhead's and BM_FlightRecorderOverhead's
        // baseline is the SAME path with the subsystem disabled, so
        // their target is parity, not 5x: they fail when enabled
        // telemetry (or the always-on flight recorder) costs more
        // than 2%.
        bool parity = c.name == "BM_MetricsOverhead" ||
                      c.name == "BM_FlightRecorderOverhead";
        bool floor = c.gated && c.name != "BM_WarmHitCost" &&
                     !parity;
        if (floor && c.speedup() < 5.0) {
            std::cerr << "FAIL: " << c.name
                      << " speedup below the 5x target\n";
            ok = false;
        }
        if (parity && c.speedup() < 0.98) {
            std::cerr << "FAIL: " << c.name << " — enabled telemetry "
                      << "costs more than 2% on the warm hit path\n";
            ok = false;
        }
    }
    if (writeBenchJson(cases, "BENCH_core.json")) {
        std::cout << "wrote BENCH_core.json\n";
    } else {
        std::cerr << "FAIL: could not write BENCH_core.json\n";
        ok = false;
    }
    return ok ? 0 : 1;
}

// ====================================================================
// google-benchmark cases
// ====================================================================

void
BM_SystolicArrayCycleSim(benchmark::State &state)
{
    const int width = static_cast<int>(state.range(0));
    sa::Matrix w(width, width), x(2 * width, width);
    Prng rng(1);
    for (int i = 0; i < width; ++i)
        for (int j = 0; j < width; ++j)
            w.at(i, j) = 1.0 + rng.uniform(0, 7);
    for (int i = 0; i < 2 * width; ++i)
        for (int j = 0; j < width; ++j)
            x.at(i, j) = rng.uniform(0, 9);
    for (auto _ : state) {
        sa::SystolicArray sim(width, true);
        sim.loadWeights(w);
        benchmark::DoNotOptimize(sim.run(x));
    }
    state.SetItemsProcessed(state.iterations() * 2 * width * width *
                            width);
}
BENCHMARK(BM_SystolicArrayCycleSim)->Arg(8)->Arg(16)->Arg(32);

void
BM_SaAnalytical(benchmark::State &state)
{
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            sa::analyzeMatmul(65536, 8192, 1280, 128));
    }
}
BENCHMARK(BM_SaAnalytical);

void
BM_GatingEngineEvaluate(benchmark::State &state)
{
    arch::GatingParams params;
    auto t = core::ActivityTimeline::periodic(1u << 20, 0, 8, 1024);
    core::UnitSpec spec{arch::GatedUnit::Vu, 5.0, 1e-9};
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::evaluateTimeline(
            t, spec, core::GatingMode::SwExact, params));
    }
}
BENCHMARK(BM_GatingEngineEvaluate);

void
BM_TimelineAppend(benchmark::State &state)
{
    auto unit = core::ActivityTimeline::periodic(4096, 3, 16, 128);
    for (auto _ : state) {
        core::ActivityTimeline acc;
        for (int i = 0; i < 256; ++i)
            acc.append(unit);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_TimelineAppend);

void
BM_TimelineRepeated(benchmark::State &state)
{
    auto unit = core::ActivityTimeline::periodic(4096, 3, 16, 128);
    for (auto _ : state)
        benchmark::DoNotOptimize(unit.repeated(1u << 20));
}
BENCHMARK(BM_TimelineRepeated);

void
BM_TimelineRepeatedSeedAlgorithm(benchmark::State &state)
{
    auto unit =
        toSeed(core::ActivityTimeline::periodic(4096, 3, 16, 128));
    for (auto _ : state)
        benchmark::DoNotOptimize(seedRepeated(unit, 1u << 20));
}
BENCHMARK(BM_TimelineRepeatedSeedAlgorithm);

void
BM_SramAllocator(benchmark::State &state)
{
    Prng rng(7);
    for (auto _ : state) {
        mem::SramAllocator alloc(128u << 20, 4096);
        for (int i = 0; i < 200; ++i) {
            std::uint64_t start = i;
            try {
                alloc.allocate((1 + rng.uniform(0, 63)) << 12, start,
                               start + 1 + rng.uniform(0, 9));
            } catch (const ConfigError &) {
            }
        }
        benchmark::DoNotOptimize(alloc.peakBytes());
    }
}
BENCHMARK(BM_SramAllocator);

void
BM_CollectiveModel(benchmark::State &state)
{
    const auto &cfg = arch::npuConfig(arch::NpuGeneration::D);
    ici::Torus torus = ici::Torus::forChips(cfg, 64);
    ici::CollectiveModel coll(cfg, torus);
    for (auto _ : state) {
        benchmark::DoNotOptimize(coll.seconds(
            ici::CollectiveKind::AllReduce, 256u << 20));
    }
}
BENCHMARK(BM_CollectiveModel);

void
BM_WholeWorkloadSimulation(benchmark::State &state)
{
    // Steady-state (warm) path: after the first iteration this is a
    // whole-run cache replay.
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::simulateWorkload(
            models::Workload::Prefill70B, arch::NpuGeneration::D));
    }
}
BENCHMARK(BM_WholeWorkloadSimulation);

void
BM_WholeWorkloadSimulationCold(benchmark::State &state)
{
    // Genuinely cold path: every shared cache dropped per iteration,
    // so build + compile + operator simulation all rerun.
    for (auto _ : state) {
        sim::clearSharedCaches();
        benchmark::DoNotOptimize(sim::simulateWorkload(
            models::Workload::Prefill70B, arch::NpuGeneration::D));
    }
}
BENCHMARK(BM_WholeWorkloadSimulationCold);

void
BM_SloSearch(benchmark::State &state)
{
    // Steady-state (warm) path: after the first iteration every
    // candidate evaluation is a whole-run cache replay.
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim::findBestSetup(
            models::Workload::DlrmM, arch::NpuGeneration::D));
    }
}
BENCHMARK(BM_SloSearch);

void
BM_SloSearchCold(benchmark::State &state)
{
    // Genuinely cold path: every shared cache dropped per iteration,
    // so each candidate setup is rebuilt, recompiled, and re-run.
    for (auto _ : state) {
        sim::clearSharedCaches();
        benchmark::DoNotOptimize(sim::findBestSetup(
            models::Workload::DlrmM, arch::NpuGeneration::D));
    }
}
BENCHMARK(BM_SloSearchCold);

}  // namespace

int
main(int argc, char **argv)
{
    // --core-only: just the core cases. A --benchmark_* flag without
    // --core-only selects google-benchmark cases and skips the core
    // harness (and its BENCH_core.json write). Default: both.
    bool core_only = false;
    bool gbench_flags = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg(argv[i]);
        if (arg == "--core-only")
            core_only = true;
        else if (arg.rfind("--benchmark_", 0) == 0)
            gbench_flags = true;
    }

    int rc = 0;
    if (core_only || !gbench_flags)
        rc = runCoreCases();
    if (core_only)
        return rc;

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return rc;
}
