/**
 * @file
 * Table 4: the most energy-efficient SLO-compliant configuration per
 * workload on NPU-D, found by the same search the paper's artifact
 * runs (sweep chips/batch, keep configs meeting 1x SLO, pick the
 * lowest energy per unit).
 */

#include "bench/bench_util.h"
#include "sim/slo.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Table 4",
                  "most energy-efficient SLO-compliant configs "
                  "(NPU-D)");

    TablePrinter t({"Workload", "Chips (search)", "Batch (search)",
                    "Chips (paper)", "Batch (paper)", "SLO",
                    "J/unit (NoPG)"});
    // SLO-search every workload in parallel on the shared sweep pool
    // (each search in turn fans its candidate setups out on the SLO
    // candidate pool); results come back in workload order.
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto grid = bench::makeGrid(axis, {arch::NpuGeneration::D});
    auto results = bench::searchGrid(grid);
    std::size_t idx = 0;
    for (const auto &s : axis) {
        const auto &res = results.at(idx++);
        // The paper column only exists for the 17 paper workloads;
        // custom scenarios anchor on their registry default setup.
        auto paper = s.builtin
                         ? models::table4Setup(s.workload)
                         : models::defaultScenarioSetup(
                               *s.spec, arch::NpuGeneration::D);
        t.addRow({s.name(),
                  std::to_string(res.setup.chips),
                  std::to_string(res.setup.batch),
                  std::to_string(paper.chips),
                  std::to_string(paper.batch),
                  TablePrinter::fmt(res.sloRatio, 0) + "x",
                  TablePrinter::eng(res.energyPerUnit, 3)});
    }
    t.print(std::cout);
    std::cout << "Search grid: chips x{1,2,4}, batch /{4,2,1} around "
                 "the Table 4 anchor; SLO = 5x default latency (§3)\n";
    return 0;
}
