/**
 * @file
 * Table 2: NPU specifications, plus the derived quantities our models
 * add (peak FLOPs, die area, static power) so the power-model
 * calibration is visible.
 */

#include "bench/bench_util.h"
#include "energy/power_model.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBenchNoGrid(argc, argv);
    bench::banner("Table 2", "NPU specifications (A..E)");

    TablePrinter t({"Spec", "NPU-A", "NPU-B", "NPU-C", "NPU-D",
                    "NPU-E"});
    auto row = [&](const std::string &name, auto getter) {
        std::vector<std::string> cells = {name};
        for (auto gen : arch::allGenerations())
            cells.push_back(getter(arch::npuConfig(gen)));
        t.addRow(cells);
    };

    row("Deployment Year", [](const arch::NpuConfig &c) {
        return c.deploymentYear ? std::to_string(c.deploymentYear)
                                : std::string("N/A");
    });
    row("Technology", [](const arch::NpuConfig &c) {
        return arch::techNodeName(c.node);
    });
    row("Frequency (MHz)", [](const arch::NpuConfig &c) {
        return TablePrinter::fmt(c.frequencyHz / 1e6, 0);
    });
    row("SA Width", [](const arch::NpuConfig &c) {
        return std::to_string(c.saWidth);
    });
    row("# of SAs/VUs", [](const arch::NpuConfig &c) {
        return std::to_string(c.numSa) + "/" + std::to_string(c.numVu);
    });
    row("SRAM Size (MB)", [](const arch::NpuConfig &c) {
        return std::to_string(c.sramBytes >> 20);
    });
    row("HBM Type",
        [](const arch::NpuConfig &c) { return c.hbmType; });
    row("HBM BW (GB/s)", [](const arch::NpuConfig &c) {
        return TablePrinter::fmt(c.hbmBandwidth / 1e9, 0);
    });
    row("HBM Size (GB)", [](const arch::NpuConfig &c) {
        return std::to_string(c.hbmBytes >> 30);
    });
    row("ICI BW/link (GB/s)", [](const arch::NpuConfig &c) {
        return TablePrinter::fmt(c.iciBandwidthPerLink / 1e9, 0);
    });
    row("ICI Config", [](const arch::NpuConfig &c) {
        return std::to_string(c.iciLinks) + " links, " +
               std::to_string(c.torusDims) + "D torus";
    });
    t.addSeparator();
    row("Peak bf16 TFLOPs*", [](const arch::NpuConfig &c) {
        return TablePrinter::fmt(c.peakFlops() / 1e12, 1);
    });
    row("Die area (mm^2)*", [](const arch::NpuConfig &c) {
        return TablePrinter::fmt(
            energy::AreaModel(c).baseline().total(), 0);
    });
    row("Chip static power (W)*", [](const arch::NpuConfig &c) {
        return TablePrinter::fmt(
            energy::PowerModel(c).totalStaticPower(), 0);
    });
    row("ReGate area overhead*", [](const arch::NpuConfig &c) {
        return TablePrinter::pct(
            energy::AreaModel(c).gatingOverheadFraction(), 2);
    });

    t.print(std::cout);
    std::cout << "(*) derived by this repo's area/power model; the "
                 "paper reports <3.3% area overhead on TPUv4i (§4.4)\n";
    return 0;
}
