/**
 * @file
 * Fig. 7: distribution of SRAM working-set demands of tensor
 * operators, weighted by operator execution time (NPU-D). Printed as
 * CDF percentiles per workload family.
 */

#include "bench/bench_util.h"
#include "common/stats.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 7",
                  "SRAM demand CDF, weighted by operator execution "
                  "time (NPU-D)");

    TablePrinter t({"Workload", "p10 (MB)", "p25", "p50", "p75",
                    "p90", "p100", "<=8MB", "<=128MB"});
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports =
        bench::simulateAll(axis, {arch::NpuGeneration::D});
    std::size_t idx = 0;
    for (const auto &s : axis) {
        const auto &rep = bench::reportFor(
            reports, idx, s, arch::NpuGeneration::D);
        std::vector<std::pair<double, double>> samples;
        for (const auto &rec : rep.run().opRecords) {
            if (rec.sramDemandBytes() <= 0)
                continue;  // Fused ops live inside their producer.
            samples.emplace_back(rec.sramDemandBytes(),
                                 static_cast<double>(rec.duration()) *
                                     static_cast<double>(rec.count()));
        }
        auto cdf = stats::weightedCdf(samples);
        auto at = [&](double frac) {
            // Invert the CDF at the given fraction.
            for (const auto &[v, f] : cdf) {
                if (f >= frac)
                    return v / (1 << 20);
            }
            return cdf.back().first / (1 << 20);
        };
        t.addRow({s.name(),
                  TablePrinter::fmt(at(0.10), 2),
                  TablePrinter::fmt(at(0.25), 2),
                  TablePrinter::fmt(at(0.50), 2),
                  TablePrinter::fmt(at(0.75), 2),
                  TablePrinter::fmt(at(0.90), 2),
                  TablePrinter::fmt(at(1.0), 2),
                  TablePrinter::pct(
                      stats::cdfAt(cdf, 8.0 * (1 << 20)), 1),
                  TablePrinter::pct(
                      stats::cdfAt(cdf, 128.0 * (1 << 20)), 1)});
    }
    t.print(std::cout);
    std::cout << "Paper shape: DLRM demand stays below 8 MB; "
                 "training/prefill demands can exceed the 128 MB "
                 "scratchpad (§3)\n";
    return 0;
}
