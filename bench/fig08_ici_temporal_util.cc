/**
 * @file
 * Fig. 8: ICI temporal utilization per workload and generation.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 8", "ICI temporal utilization");

    TablePrinter t({"Workload", "A", "B", "C", "D"});
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports = bench::simulateAll(axis, bench::paperGenerations());
    std::size_t idx = 0;
    for (const auto &s : axis) {
        std::vector<std::string> cells = {s.name()};
        for (auto gen : bench::paperGenerations()) {
            const auto &rep = bench::reportFor(reports, idx, s, gen);
            cells.push_back(TablePrinter::pct(rep.run().temporalUtil(arch::Component::Ici), 1));
        }
        t.addRow(cells);
    }
    t.print(std::cout);
    std::cout << "Paper shape: ~0 for single-chip/diffusion, high for DLRM (AllToAll-bound), low-mid for TP LLMs\n";
    return 0;
}
