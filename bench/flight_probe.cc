/**
 * @file
 * flight_probe: deterministic crash-test target for the flight
 * recorder's postmortem path (tests/postmortem_check.py).
 *
 * Runs a small mini-sweep — real simulateWorkload calls inside
 * obs::TraceRecorder::Span scopes, which mirror begin/end markers
 * into the flight rings — then raises a fatal signal mid-sweep
 * INSIDE an open span. The installed crash handlers must
 *
 *  - dump the rings to the --postmortem path as parseable Chrome
 *    trace-event JSON with monotone timestamps and the open 'B'
 *    span (`tools/trace_check.py --postmortem` pins all of that),
 *  - salvage the partial --trace-out buffer (the orderly flush
 *    never runs), and
 *  - re-raise with the default disposition, so the probe dies with
 *    the real signal status the test asserts on.
 *
 * With --signal none the probe completes the sweep and exits 0:
 * the control arm proving the handlers are inert on a clean run.
 */

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "models/workload.h"
#include "obs/flight_recorder.h"
#include "obs/trace.h"
#include "sim/report.h"

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &msg)
{
    std::cerr << argv0 << ": " << msg << "\n"
              << "usage: " << argv0
              << " --postmortem PATH [--trace-out PATH]"
              << " [--signal segv|abrt|term|none] [--cases N=4]\n";
    std::exit(2);
}

}  // namespace

int
main(int argc, char **argv)
{
    using regate::obs::FlightRecorder;
    using regate::obs::TraceRecorder;

    std::string postmortem;
    std::string trace_out;
    std::string signal_name = "segv";
    int cases = 4;

    auto value = [&](int &i, const char *flag) {
        if (++i >= argc)
            usage(argv[0], std::string(flag) + " needs a value");
        return std::string(argv[i]);
    };
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--postmortem")
            postmortem = value(i, "--postmortem");
        else if (arg == "--trace-out")
            trace_out = value(i, "--trace-out");
        else if (arg == "--signal")
            signal_name = value(i, "--signal");
        else if (arg == "--cases")
            cases = std::atoi(value(i, "--cases").c_str());
        else
            usage(argv[0], "unknown argument '" + arg + "'");
    }
    if (postmortem.empty())
        usage(argv[0], "--postmortem is required");
    if (cases < 2)
        usage(argv[0], "--cases must be >= 2");
    int sig = 0;
    if (signal_name == "segv")
        sig = SIGSEGV;
    else if (signal_name == "abrt")
        sig = SIGABRT;
    else if (signal_name == "term")
        sig = SIGTERM;
    else if (signal_name != "none")
        usage(argv[0], "bad --signal '" + signal_name + "'");

    FlightRecorder::installCrashHandlers(postmortem);
    if (!trace_out.empty())
        TraceRecorder::instance().start(trace_out);

    auto &flight = FlightRecorder::instance();
    flight.instant("probe.start", signal_name.c_str());

    // The signal fires from inside case doom's open span, after at
    // least one case has completed cleanly — so the postmortem
    // holds both closed history and the open 'B' frontier.
    int doom = cases / 2;
    for (int c = 0; c < cases; ++c) {
        TraceRecorder::Span span("probe.case", "probe");
        char detail[32];
        std::snprintf(detail, sizeof(detail), "case=%d/%d", c,
                      cases);
        flight.instant("probe.case.start", detail);
        auto report = regate::sim::simulateWorkload(
            regate::models::Workload::Decode8B,
            regate::arch::NpuGeneration::D);
        (void)report;
        if (sig != 0 && c == doom) {
            flight.instant("probe.doom", detail);
            std::raise(sig);
            // A handled-and-re-raised fatal signal never returns;
            // reaching here means the handlers were not installed.
            std::cerr << argv[0] << ": raise(" << signal_name
                      << ") returned\n";
            return 3;
        }
    }

    flight.instant("probe.done");
    TraceRecorder::instance().flush();
    return 0;
}
