/**
 * @file
 * Fig. 22: sensitivity of savings and performance overhead to the
 * power-gate/wake-up delays (1x .. 4x of Table 3, which also scales
 * the BETs).
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using sim::Policy;
    bench::banner("Figure 22",
                  "energy/performance vs power-gate & wake-up delay "
                  "scaling (NPU-D)");

    const std::vector<double> scales = {1.0, 1.5, 2.0, 3.0, 4.0};

    // (workload x delay scale) grid with per-case gating params;
    // fanned out on the shared sweep pool, results in grid order.
    auto axis = bench::workloadAxis(bench::sensitivityWorkloads());
    std::vector<sim::SweepCase> grid;
    for (const auto &s : axis) {
        for (double scale : scales) {
            arch::GatingParams params;
            params.setDelayScale(scale);
            grid.push_back(
                bench::caseFor(s, arch::NpuGeneration::D, params));
        }
    }
    auto reports = bench::runGrid(grid);

    std::size_t idx = 0;
    for (const auto &s : axis) {
        std::cout << "\n-- " << s.name() << " --\n";
        TablePrinter t({"Delay scale", "Base sav", "HW sav",
                        "Full sav", "Base ovh", "HW ovh",
                        "Full ovh"});
        for (double scale : scales) {
            const auto &rep = reports.at(idx++);
            auto sav = [&](Policy p) {
                return TablePrinter::pct(rep.run().savingVsNoPg(p), 1);
            };
            auto ovh = [&](Policy p) {
                return TablePrinter::pct(
                    rep.run().result(p).perfOverhead, 3);
            };
            t.addRow({TablePrinter::fmt(scale, 1) + "x",
                      sav(Policy::Base), sav(Policy::HW),
                      sav(Policy::Full), ovh(Policy::Base),
                      ovh(Policy::HW), ovh(Policy::Full)});
        }
        t.print(std::cout);
    }
    std::cout << "\nPaper: longer delays slightly reduce savings and "
                 "raise Base/HW overhead; Full's compiler knowledge "
                 "keeps overhead flat (§6.5)\n";
    return 0;
}
