/**
 * @file
 * Fig. 19: performance overhead of the gating designs relative to
 * NoPG. Paper bounds: Base up to 4.6%, HW under ~0.6% average, Full
 * under 0.44%.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using sim::Policy;
    bench::banner("Figure 19",
                  "performance overhead vs NoPG (NPU-D)");

    TablePrinter t(
        {"Workload", "ReGate-Base", "ReGate-HW", "ReGate-Full"});
    double worst_base = 0, worst_full = 0;
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports =
        bench::simulateAll(axis, {arch::NpuGeneration::D});
    std::size_t idx = 0;
    for (const auto &s : axis) {
        const auto &rep = bench::reportFor(
            reports, idx, s, arch::NpuGeneration::D);
        auto pct = [&](Policy p) {
            return TablePrinter::pct(rep.run().result(p).perfOverhead,
                                     3);
        };
        worst_base = std::max(
            worst_base, rep.run().result(Policy::Base).perfOverhead);
        worst_full = std::max(
            worst_full, rep.run().result(Policy::Full).perfOverhead);
        t.addRow({s.name(), pct(Policy::Base),
                  pct(Policy::HW), pct(Policy::Full)});
    }
    t.print(std::cout);
    std::cout << "Worst case: Base "
              << TablePrinter::pct(worst_base, 2) << ", Full "
              << TablePrinter::pct(worst_full, 3)
              << " (paper: Base <= 4.6%, Full <= 0.44%)\n";
    return 0;
}
