/**
 * @file
 * Fig. 24: operational carbon reduction of the gating designs. The
 * reductions exceed the busy-energy savings because idle chips are
 * almost entirely static power, which ReGate gates away.
 */

#include "bench/bench_util.h"
#include "carbon/carbon_model.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using sim::Policy;
    bench::banner("Figure 24",
                  "operational carbon reduction (0.0624 kgCO2e/kWh, "
                  "60% utilization, PUE 1.1)");

    TablePrinter t({"Workload", "Base", "HW", "Full", "Ideal",
                    "Busy-energy saving (Full)"});
    auto axis = bench::workloadAxis(bench::sensitivityWorkloads());
    auto reports =
        bench::simulateAll(axis, {arch::NpuGeneration::D});
    std::size_t idx = 0;
    for (const auto &s : axis) {
        const auto &rep = bench::reportFor(
            reports, idx, s, arch::NpuGeneration::D);
        auto red = [&](Policy p) {
            return TablePrinter::pct(
                carbon::operationalCarbonReduction(rep, p), 1);
        };
        t.addRow({s.name(), red(Policy::Base),
                  red(Policy::HW), red(Policy::Full),
                  red(Policy::Ideal),
                  TablePrinter::pct(
                      rep.run().savingVsNoPg(Policy::Full), 1)});
    }
    t.print(std::cout);
    std::cout << "Paper: 31.1%-62.9% operational carbon reduction "
                 "with ReGate-Full (§6.6)\n";
    return 0;
}
