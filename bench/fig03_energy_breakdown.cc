/**
 * @file
 * Fig. 3: normalized energy breakdown per workload and generation:
 * the idle portion plus static/dynamic energy per component. The
 * paper's headline bands: idle 17%-32% of total; static 30%-72% of
 * busy energy.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    using arch::Component;
    bench::banner("Figure 3",
                  "energy consumption breakdown (NoPG, % of total)");

    TablePrinter t({"Workload", "Gen", "Idle", "Dyn SA", "Sta SA",
                    "Dyn VU", "Sta VU", "Dyn SRAM", "Sta SRAM",
                    "Dyn ICI", "Sta ICI", "Dyn HBM", "Sta HBM",
                    "Dyn Oth", "Sta Oth", "StaticShareBusy"});

    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports = bench::simulateAll(axis, bench::paperGenerations());
    std::size_t idx = 0;
    for (const auto &s : axis) {
        for (auto gen : bench::paperGenerations()) {
            const auto &rep =
                bench::reportFor(reports, idx, s, gen);
            const auto &e =
                rep.run().result(sim::Policy::NoPG).energy;
            double total = rep.podTotalEnergy(sim::Policy::NoPG) /
                           rep.setup.chips;
            double busy_scale =
                1.1 / total;  // PUE applied to busy shares too.
            auto pct = [&](double j) {
                return TablePrinter::pct(j * busy_scale, 1);
            };
            t.addRow({s.name(), bench::genLabel(gen),
                      TablePrinter::pct(
                          rep.idleShare(sim::Policy::NoPG), 1),
                      pct(e.dynamicJ[Component::Sa]),
                      pct(e.staticJ[Component::Sa]),
                      pct(e.dynamicJ[Component::Vu]),
                      pct(e.staticJ[Component::Vu]),
                      pct(e.dynamicJ[Component::Sram]),
                      pct(e.staticJ[Component::Sram]),
                      pct(e.dynamicJ[Component::Ici]),
                      pct(e.staticJ[Component::Ici]),
                      pct(e.dynamicJ[Component::Hbm]),
                      pct(e.staticJ[Component::Hbm]),
                      pct(e.dynamicJ[Component::Other]),
                      pct(e.staticJ[Component::Other]),
                      TablePrinter::pct(e.staticShareBusy(), 1)});
        }
        t.addSeparator();
    }
    t.print(std::cout);
    std::cout << "Paper bands: Idle 17-32% of total; busy static "
                 "share 30-72% (§3)\n";
    return 0;
}
