/**
 * @file
 * Table 3: power on/off delays and break-even times of each gated
 * unit, plus the derived per-event transition energies and the
 * hardware detection windows the policies use.
 */

#include "bench/bench_util.h"
#include "core/bet.h"
#include "energy/power_model.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBenchNoGrid(argc, argv);
    bench::banner("Table 3",
                  "power on/off delays and BETs (synthesized "
                  "prototype values)");

    const auto &cfg = arch::npuConfig(arch::NpuGeneration::D);
    energy::PowerModel power(cfg);
    arch::GatingParams params;

    auto unit_power = [&](arch::GatedUnit u) {
        switch (u) {
          case arch::GatedUnit::SaPe:
            return power.peStaticPower();
          case arch::GatedUnit::SaFull:
            return power.saStaticPower();
          case arch::GatedUnit::Vu:
            return power.vuStaticPower();
          case arch::GatedUnit::Hbm:
            return power.hbmStaticPower();
          case arch::GatedUnit::Ici:
            return power.iciStaticPower();
          case arch::GatedUnit::SramSleep:
          case arch::GatedUnit::SramOff:
            return power.sramSegmentStaticPower();
        }
        return 0.0;
    };

    TablePrinter t({"Unit", "On/Off Delay (cyc)", "BET (cyc)",
                    "HW window (cyc)", "Unit static (W)",
                    "Transition energy (nJ)"});
    for (auto u : {arch::GatedUnit::SaPe, arch::GatedUnit::SaFull,
                   arch::GatedUnit::Vu, arch::GatedUnit::Hbm,
                   arch::GatedUnit::Ici, arch::GatedUnit::SramSleep,
                   arch::GatedUnit::SramOff}) {
        double p = unit_power(u);
        double e_tr = core::transitionEnergy(
            p, params.breakEven(u), params.onOffDelay(u),
            params.gatedLeakage(u), cfg.cycleTime());
        t.addRow({arch::gatedUnitName(u),
                  std::to_string(params.onOffDelay(u)),
                  std::to_string(params.breakEven(u)),
                  std::to_string(params.detectionWindow(u)),
                  TablePrinter::fmt(p, 4),
                  TablePrinter::fmt(e_tr * 1e9, 4)});
    }
    t.print(std::cout);
    std::cout << "Leakage in gated state: logic "
              << TablePrinter::pct(params.ratios().logicOff)
              << ", SRAM sleep "
              << TablePrinter::pct(params.ratios().sramSleep)
              << ", SRAM off "
              << TablePrinter::pct(params.ratios().sramOff, 2)
              << " of active static power (§6.1)\n";
    return 0;
}
