/**
 * @file
 * Fig. 15: the setpm VU-gating example, executed instruction by
 * instruction on the VLIW core model; then the same pattern produced
 * automatically by the compiler's idleness + instrumentation passes
 * on a larger kernel.
 */

#include "bench/bench_util.h"
#include "compiler/compiler.h"
#include "isa/vliw_core.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    using core::PowerMode;
    using isa::FuType;
    bench::initBenchNoGrid(argc, argv);
    bench::banner("Figure 15",
                  "setpm power-gating timeline on the VLIW core");

    // The paper's exact program: 2 SAs, 2 VUs, 8-cycle pops,
    // 2-cycle VU on/off delay.
    isa::VliwCoreConfig cfg;
    cfg.numSa = 2;
    cfg.numVu = 2;
    cfg.vuWakeDelay = 2;

    isa::Program p;
    p.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    p.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu,
                                     PowerMode::Off);
    p.bundle().saPop(0).saPop(1).nop(6);
    p.bundle().setpm(0b11, FuType::Vu, PowerMode::On);
    p.bundle().saPop(0).saPop(1).vuOp(0).vuOp(1);
    p.bundle().vuOp(0).vuOp(1).setpm(0b11, FuType::Vu,
                                     PowerMode::Off);

    isa::VliwCore core(cfg);
    core.run(p);

    const char *names[] = {"I1", "I2", "I3", "I4", "I5", "I6"};
    TablePrinter t({"Instr", "Dispatch cycle", "Misc slot"});
    for (std::size_t i = 0; i < p.bundles().size(); ++i) {
        t.addRow({names[i],
                  std::to_string(core.bundleDispatch()[i]),
                  p.bundles()[i].misc.has_value()
                      ? p.bundles()[i].misc->toString()
                      : ""});
    }
    t.print(std::cout);

    std::cout << "Total cycles: " << core.totalCycles()
              << ", wake stalls: " << core.wakeStallCycles()
              << "\nVU0 gated intervals:";
    for (const auto &iv : core.vuTrace(0).gated)
        std::cout << " [" << iv.start << ", " << iv.end << ")";
    std::cout << "\nPaper: VUs gated for 10 cycles per 16-cycle "
                 "period, zero exposed stall\n\n";

    // Now the compiler does it automatically on a bigger kernel.
    compiler::KernelSpec spec;
    spec.tiles = 16;
    spec.popCycles = 100;
    spec.vuOpsPerTile = 2;
    arch::GatingParams params;
    auto result = compiler::compileKernel(spec, cfg, params);

    isa::VliwCore gated(cfg);
    gated.run(result.program);
    std::cout << "Compiler-instrumented kernel (16 tiles, 100-cycle "
                 "pops):\n  setpm inserted: "
              << result.instrumentation.setpmInserted
              << ", gated intervals: "
              << result.instrumentation.gatedIntervals
              << "\n  VU0 gated "
              << gated.vuTrace(0).gatedCycles() << " of "
              << gated.totalCycles()
              << " cycles, wake stalls: " << gated.wakeStallCycles()
              << "\n";
    return 0;
}
