/**
 * @file
 * Fig. 6: VU temporal utilization per workload and generation.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 6", "VU temporal utilization");

    TablePrinter t({"Workload", "A", "B", "C", "D"});
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports = bench::simulateAll(axis, bench::paperGenerations());
    std::size_t idx = 0;
    for (const auto &s : axis) {
        std::vector<std::string> cells = {s.name()};
        for (auto gen : bench::paperGenerations()) {
            const auto &rep = bench::reportFor(reports, idx, s, gen);
            cells.push_back(TablePrinter::pct(rep.run().temporalUtil(arch::Component::Vu), 1));
        }
        t.addRow(cells);
    }
    t.print(std::cout);
    std::cout << "Paper shape: below 60% everywhere -- VUs wait on SA/HBM/ICI (S3)\n";
    return 0;
}
