/**
 * @file
 * regate_orch: fault-tolerant fleet driver for the sharded
 * figure/table sweeps (src/orch/ + src/net/). One command replaces
 * the hand-launched `--shard i/N` + merge_shards.py recipe:
 *
 *     regate_orch --bin build/fig02_energy_efficiency \
 *         --dir /tmp/fig02_run --workers 4 --render > fig02.txt
 *
 * and scales past one machine by mixing in remote agents
 * (bench/regate_agent.cc) with repeated `--host` flags:
 *
 *     regate_orch --bin build/fig02_energy_efficiency \
 *         --dir /tmp/fig02_fleet --workers 4 \
 *         --host hostA:9300 --host hostB:9300:8 --render
 *
 * plans the grid into shards, drives local worker subprocesses and
 * remote agent slots from one dynamic queue with per-case
 * heartbeats, stall-based timeouts, and bounded retry (an agent
 * lost mid-run reassigns its shards exactly like a crashed
 * subprocess), streams validated shard files into a merged document
 * byte-identical to `--shard 0/1`, and (with --render) re-renders
 * the figure byte-identical to an unsharded run. An interrupted run
 * resumes with --resume, re-running only the shards that never
 * validated. Progress events go to stderr.
 *
 * The --inject-* flags are failure-injection hooks for the
 * orchestrator's tests and CI jobs; they drive the real
 * kill/stall/retry machinery and are harmless (if pointless)
 * elsewhere.
 */

#include <climits>
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <string>

#include "bench/cli_util.h"
#include "common/error.h"
#include "orch/orchestrator.h"
#include "orch/probe.h"

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &msg)
{
    std::cerr
        << argv0 << ": " << msg << "\n"
        << "usage: " << argv0
        << " --bin FIGURE_BINARY --dir RUN_DIR\n"
        << "    [--workers N=4 (local slots; 0 = remote-only)]\n"
        << "    [--host host:port[:slots] (repeatable; regate_agent "
           "fleet members)]\n"
        << "    [--spec FILE (scenario spec every worker runs; its "
           "digest joins the fleet cross-check)]\n"
        << "    [--granularity G=4 (shards per fleet slot)]\n"
        << "    [--stall-timeout-s S=600 (kill after S s without a "
           "heartbeat; 0 disables)]\n"
        << "    [--timeout-s T=0 (wall-clock cap per attempt; 0 "
           "disables)]\n"
        << "    [--max-attempts K=3] [--resume]\n"
        << "    [--join-port P (accept regate_agent --join "
           "dial-ins; 0 = ephemeral)]\n"
        << "    [--status-port P (serve a live canonical-JSON "
           "sweep snapshot; 0 = ephemeral; see "
           "tools/regate_top.py)]\n"
        << "    [--secret-file PATH (HMAC-authenticate hellos; or "
           "REGATE_FLEET_SECRET)]\n"
        << "    [--max-speculative S=0 (work-stealing: duplicate up "
           "to S straggling shards)]\n"
        << "    [--reconnect-tries R=8 (re-dials per lost agent; 0 "
           "= retire on first loss)]\n"
        << "    [--merged-out PATH=RUN_DIR/merged.json] [--render]\n"
        << "    [--trace-out trace.json (Chrome/Perfetto timeline "
           "of the whole sweep)]\n"
        << "    [--metrics-out metrics.json (sweep-wide "
           "obs::MetricsRegistry snapshot)]\n"
        << "    [--inject-kill-slot S] [--inject-stall-shard J]"
        << " [--stall-seconds N]\n"
        << "    [--inject-slow-shard J] [--slow-case-seconds N]\n";
    std::exit(2);
}

/** Parse "host:port[:slots]"; exits with a usage error on garbage. */
regate::orch::HostSpec
parseHostSpec(const char *argv0, const std::string &spec)
{
    auto bad = [&](const std::string &why) -> regate::orch::HostSpec {
        usage(argv0, "bad --host '" + spec + "': " + why +
                         " (want host:port[:slots])");
    };
    auto first = spec.find(':');
    if (first == std::string::npos || first == 0)
        return bad("missing port");
    regate::orch::HostSpec host;
    host.host = spec.substr(0, first);
    auto rest = spec.substr(first + 1);
    auto second = rest.find(':');
    std::string port_str =
        second == std::string::npos ? rest : rest.substr(0, second);
    auto parseNum = [&](const std::string &s, const char *what,
                        long lo, long hi) {
        long v = 0;
        if (!regate::bench::parseLongArg(s.c_str(), lo, hi, &v))
            bad(std::string("bad ") + what + " '" + s + "'");
        return v;
    };
    host.port = static_cast<std::uint16_t>(
        parseNum(port_str, "port", 1, 65535));
    if (second != std::string::npos)
        host.slots = static_cast<int>(parseNum(
            rest.substr(second + 1), "slot count", 1, INT_MAX));
    return host;
}

}  // namespace

int
main(int argc, char **argv)
{
    using regate::orch::OrchOptions;

    OrchOptions opt;
    opt.events = &std::cerr;

    auto intArg = [&](int &i, const char *flag) {
        return regate::bench::intFlagArg(
            argc, argv, i, flag,
            [&](const std::string &msg) { usage(argv[0], msg); });
    };
    auto stringArg = [&](int &i, const char *flag) {
        if (++i >= argc)
            usage(argv[0], std::string(flag) + " needs a value");
        return std::string(argv[i]);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--bin") {
            opt.bin = stringArg(i, "--bin");
        } else if (arg == "--dir") {
            opt.dir = stringArg(i, "--dir");
        } else if (arg == "--workers") {
            opt.workers = intArg(i, "--workers");
        } else if (arg == "--host") {
            opt.hosts.push_back(
                parseHostSpec(argv[0], stringArg(i, "--host")));
        } else if (arg == "--spec") {
            opt.specFile = stringArg(i, "--spec");
        } else if (arg == "--granularity") {
            opt.granularity = intArg(i, "--granularity");
        } else if (arg == "--stall-timeout-s") {
            opt.stallTimeoutSec = intArg(i, "--stall-timeout-s");
        } else if (arg == "--timeout-s") {
            opt.timeoutSec = intArg(i, "--timeout-s");
        } else if (arg == "--max-attempts") {
            opt.retry.maxAttempts = intArg(i, "--max-attempts");
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--join-port") {
            opt.joinPort = intArg(i, "--join-port");
        } else if (arg == "--status-port") {
            opt.statusPort = intArg(i, "--status-port");
        } else if (arg == "--secret-file") {
            opt.secretFile = stringArg(i, "--secret-file");
        } else if (arg == "--max-speculative") {
            opt.maxSpeculative = intArg(i, "--max-speculative");
        } else if (arg == "--reconnect-tries") {
            opt.reconnectTries = intArg(i, "--reconnect-tries");
        } else if (arg == "--merged-out") {
            opt.mergedOut = stringArg(i, "--merged-out");
        } else if (arg == "--trace-out") {
            opt.traceOut = stringArg(i, "--trace-out");
        } else if (arg == "--metrics-out") {
            opt.metricsOut = stringArg(i, "--metrics-out");
        } else if (arg == "--render") {
            opt.render = true;
        } else if (arg == "--inject-kill-slot") {
            opt.injectKillSlot = intArg(i, "--inject-kill-slot");
        } else if (arg == "--inject-stall-shard") {
            opt.injectStallShard =
                intArg(i, "--inject-stall-shard");
        } else if (arg == "--stall-seconds") {
            opt.stallSeconds = intArg(i, "--stall-seconds");
        } else if (arg == "--inject-slow-shard") {
            opt.injectSlowShard = intArg(i, "--inject-slow-shard");
        } else if (arg == "--slow-case-seconds") {
            opt.slowCaseSeconds = intArg(i, "--slow-case-seconds");
        } else {
            usage(argv[0], "unknown argument '" + arg + "'");
        }
    }
    if (opt.bin.empty())
        usage(argv[0], "--bin is required");
    if (opt.dir.empty())
        usage(argv[0], "--dir is required");
    if (opt.workers < 0)
        usage(argv[0], "--workers must be >= 0");
    if (opt.workers == 0 && opt.hosts.empty() && opt.joinPort < 0)
        usage(argv[0], "an empty fleet: pass --workers N > 0, "
                       "--host host:port[:slots], and/or "
                       "--join-port P");
    if (opt.granularity <= 0)
        usage(argv[0], "--granularity must be positive");
    if (opt.stallTimeoutSec < 0)
        usage(argv[0], "--stall-timeout-s must be >= 0");
    if (opt.timeoutSec < 0)
        usage(argv[0], "--timeout-s must be >= 0");
    if (opt.retry.maxAttempts <= 0)
        usage(argv[0], "--max-attempts must be positive");
    if (opt.joinPort > 65535)
        usage(argv[0], "--join-port must be in [0, 65535]");
    if (opt.statusPort > 65535)
        usage(argv[0], "--status-port must be in [0, 65535]");
    if (opt.maxSpeculative < 0)
        usage(argv[0], "--max-speculative must be >= 0");
    if (opt.reconnectTries < 0)
        usage(argv[0], "--reconnect-tries must be >= 0");

    // A lost agent connection must surface as a failed attempt on
    // that transport, not SIGPIPE the whole driver.
    std::signal(SIGPIPE, SIG_IGN);

    // Probe the target up front: a binary that does not speak the
    // shard protocol (fig15, tables 2/3) is a usage error here, not
    // an opaque worker-failure loop later. The orchestration reuses
    // the probed count instead of spawning a second --cases query.
    // With --spec the probe runs the scenario grid, so the count
    // (and a spec file the binary rejects) answers here too.
    try {
        opt.probedCases =
            regate::orch::probeGridCases(opt.bin, opt.specFile);
    } catch (const regate::ConfigError &e) {
        usage(argv[0], e.what());
    }

    return regate::orch::runOrchestration(opt);
}
