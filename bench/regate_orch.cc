/**
 * @file
 * regate_orch: fault-tolerant multi-worker driver for the sharded
 * figure/table sweeps (src/orch/). One command replaces the
 * hand-launched `--shard i/N` + merge_shards.py recipe:
 *
 *     regate_orch --bin build/fig02_energy_efficiency \
 *         --dir /tmp/fig02_run --workers 4 --render > fig02.txt
 *
 * plans the grid into shards, drives worker subprocesses with
 * timeouts and bounded retry, streams validated shard files into a
 * merged document byte-identical to `--shard 0/1`, and (with
 * --render) re-renders the figure byte-identical to an unsharded
 * run. An interrupted run resumes with --resume, re-running only
 * the shards that never validated. Progress events go to stderr.
 *
 * The --inject-* flags are failure-injection hooks for the
 * orchestrator's tests and CI job; they drive the real kill/timeout
 * machinery and are harmless (if pointless) elsewhere.
 */

#include <cerrno>
#include <climits>
#include <cstdlib>
#include <iostream>
#include <string>

#include "orch/orchestrator.h"

namespace {

[[noreturn]] void
usage(const char *argv0, const std::string &msg)
{
    std::cerr
        << argv0 << ": " << msg << "\n"
        << "usage: " << argv0
        << " --bin FIGURE_BINARY --dir RUN_DIR\n"
        << "    [--workers N=4] [--granularity G=4 (shards per "
           "worker)]\n"
        << "    [--timeout-s T=600 (per attempt; 0 disables)]\n"
        << "    [--max-attempts K=3] [--resume]\n"
        << "    [--merged-out PATH=RUN_DIR/merged.json] [--render]\n"
        << "    [--inject-kill-slot S] [--inject-stall-shard J]"
        << " [--stall-seconds N]\n";
    std::exit(2);
}

}  // namespace

int
main(int argc, char **argv)
{
    using regate::orch::OrchOptions;

    OrchOptions opt;
    opt.events = &std::cerr;

    auto intArg = [&](int &i, const char *flag) {
        if (++i >= argc)
            usage(argv[0], std::string(flag) + " needs a value");
        char *end = nullptr;
        errno = 0;
        long v = std::strtol(argv[i], &end, 10);
        if (!end || end == argv[i] || *end != '\0' ||
            errno == ERANGE || v < INT_MIN || v > INT_MAX)
            usage(argv[0], std::string("bad ") + flag + " value '" +
                               argv[i] + "'");
        return static_cast<int>(v);
    };
    auto stringArg = [&](int &i, const char *flag) {
        if (++i >= argc)
            usage(argv[0], std::string(flag) + " needs a value");
        return std::string(argv[i]);
    };

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--bin") {
            opt.bin = stringArg(i, "--bin");
        } else if (arg == "--dir") {
            opt.dir = stringArg(i, "--dir");
        } else if (arg == "--workers") {
            opt.workers = intArg(i, "--workers");
        } else if (arg == "--granularity") {
            opt.granularity = intArg(i, "--granularity");
        } else if (arg == "--timeout-s") {
            opt.timeoutSec = intArg(i, "--timeout-s");
        } else if (arg == "--max-attempts") {
            opt.retry.maxAttempts = intArg(i, "--max-attempts");
        } else if (arg == "--resume") {
            opt.resume = true;
        } else if (arg == "--merged-out") {
            opt.mergedOut = stringArg(i, "--merged-out");
        } else if (arg == "--render") {
            opt.render = true;
        } else if (arg == "--inject-kill-slot") {
            opt.injectKillSlot = intArg(i, "--inject-kill-slot");
        } else if (arg == "--inject-stall-shard") {
            opt.injectStallShard =
                intArg(i, "--inject-stall-shard");
        } else if (arg == "--stall-seconds") {
            opt.stallSeconds = intArg(i, "--stall-seconds");
        } else {
            usage(argv[0], "unknown argument '" + arg + "'");
        }
    }
    if (opt.bin.empty())
        usage(argv[0], "--bin is required");
    if (opt.dir.empty())
        usage(argv[0], "--dir is required");
    if (opt.workers <= 0)
        usage(argv[0], "--workers must be positive");
    if (opt.granularity <= 0)
        usage(argv[0], "--granularity must be positive");
    if (opt.timeoutSec < 0)
        usage(argv[0], "--timeout-s must be >= 0");
    if (opt.retry.maxAttempts <= 0)
        usage(argv[0], "--max-attempts must be positive");

    return regate::orch::runOrchestration(opt);
}
