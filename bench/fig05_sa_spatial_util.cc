/**
 * @file
 * Fig. 5: SA spatial utilization -- achieved FLOPs over peak FLOPs during SA active time.
 */

#include "bench/bench_util.h"

int
main(int argc, char **argv)
{
    using namespace regate;
    bench::initBench(argc, argv);
    bench::banner("Figure 5", "SA spatial utilization (achieved/peak FLOPs while active)");

    TablePrinter t({"Workload", "A", "B", "C", "D"});
    auto axis = bench::workloadAxis(models::allWorkloads());
    auto reports = bench::simulateAll(axis, bench::paperGenerations());
    std::size_t idx = 0;
    for (const auto &s : axis) {
        std::vector<std::string> cells = {s.name()};
        for (auto gen : bench::paperGenerations()) {
            const auto &rep = bench::reportFor(reports, idx, s, gen);
            cells.push_back(TablePrinter::pct(rep.run().saSpatialUtil(), 1));
        }
        t.addRow(cells);
    }
    t.print(std::cout);
    std::cout << "Paper shape: prefill ~90%+, decode/DLRM low, diffusion mid (head sizes < SA width)\n";
    return 0;
}
