#!/usr/bin/env python3
"""Merge sharded sweep results into one deterministic document.

The figure/table binaries write one JSON document per shard
(`figNN --shard i/N --out shard_i.json`, format: sim/serialize.h).
This tool validates that a set of shard files belongs to the same
grid and covers every grid index exactly once, then reassembles them
into a single merged document:

    merge_shards.py --out merged.json shard_0.json ... shard_N-1.json

The merged file is byte-identical to what the binary itself writes
for the degenerate single-shard split (`--shard 0/1`), and feeding it
back with `figNN --from merged.json` renders stdout byte-identical
to an unsharded run — which is how the CI merge job pins the sharded
path against the serial reference. Pass `--render BIN` to do that
re-emission in one step (stdout of `BIN --from merged.json` is
forwarded). Pass `--check` (no `--out` needed) to verify digests and
index coverage of a shard set without writing anything — the
pre-flight for a multi-machine run's artifact directory.

Determinism: the writer emits one entry per line in canonical form,
and this tool reassembles the merged document from those verbatim
lines (sorted by grid index) — numbers are never reparsed or
reprinted, so merging can never perturb a result and any shard
ordering on the command line produces the same bytes.

Integrity (format version 2): every entry line carries a "digest"
(64-bit FNV-1a, hex16) of its canonical result JSON and the document
footer carries a "file_digest" over all entry lines; both are
verified here against the raw bytes on disk, so silent corruption of
a shard artifact (truncated copy, bit rot, concurrent writer) fails
the merge loudly instead of rendering wrong figures. Shard sets that
mix format versions are rejected — every shard of a grid must come
from the same binary build.
"""

import argparse
import json
import subprocess
import sys

FORMAT_VERSION = 2

FNV_OFFSET = 0xcbf29ce484222325
FNV_PRIME = 0x100000001b3
FNV_MASK = (1 << 64) - 1


def fnv1a64(data, seed=FNV_OFFSET):
    """The shard format's digest function (common/hash.h)."""
    h = seed
    for byte in data:
        h = ((h ^ byte) * FNV_PRIME) & FNV_MASK
    return h


def hex_digest(h):
    return format(h, "016x")


def read_shard(path):
    """One read+parse per file; exits on unparseable input (a
    truncated copy is corruption, not a version problem)."""
    with open(path, "rb") as f:
        text = f.read().decode("utf-8", errors="replace")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON: {e} — truncated or "
                 "corrupted shard file?")
    return text, doc


def check_versions(loaded):
    """All files must carry the one supported format version."""
    versions = {}
    for path, _, doc in loaded:
        version = doc.get("regate_shard")
        versions[path] = version if isinstance(version, int) \
            else None
    distinct = set(versions.values())
    if len(distinct) > 1:
        detail = ", ".join(
            f"{path} is "
            + (f"v{v}" if v is not None else "not a shard file")
            for path, v in sorted(versions.items(),
                                  key=lambda kv: str(kv[1])))
        sys.exit("shard files span multiple format versions: "
                 f"{detail}; regenerate every shard of the grid "
                 "with one binary build")
    version = distinct.pop()
    if version != FORMAT_VERSION:
        found = f"v{version}" if version is not None \
            else "no regate_shard version"
        sys.exit(f"unsupported shard format ({found}, this tool "
                 f"reads v{FORMAT_VERSION}); regenerate the shards "
                 "with a matching binary build")


def load_shard(path, text, doc):
    """Validate one pre-read shard file -> [(index, line)].

    Verifies both digest layers against the raw bytes on disk:
    each entry's "digest" over its result JSON substring, and the
    footer "file_digest" over the concatenated entry lines.
    """
    for key in ("kind", "cases", "shard", "entries", "file_digest"):
        if key not in doc:
            sys.exit(f"{path}: missing '{key}'")

    # Reassemble from the verbatim one-entry-per-line layout so the
    # merge can never reprint (and thereby perturb) a number. The
    # trailing comma belongs to the document syntax, not the entry.
    entries = []
    file_digest = FNV_OFFSET
    for line in text.split("\n"):
        stripped = line[:-1] if line.endswith(",") else line
        if not stripped.startswith('{"index":'):
            continue
        entry = json.loads(stripped)
        index, digest = entry["index"], entry.get("digest")
        if digest is None:
            sys.exit(f"{path}: entry for grid index {index} carries "
                     "no digest; was the file reformatted?")
        # The canonical entry line is exactly
        # {"index":I,"digest":"D","result":<json>} — slice the raw
        # result bytes out and digest them, never a reprint.
        prefix = f'{{"index":{index},"digest":"{digest}","result":'
        if not stripped.startswith(prefix):
            sys.exit(f"{path}: entry for grid index {index} is not "
                     "in canonical form; was the file reformatted?")
        result_text = stripped[len(prefix):-1]
        computed = hex_digest(fnv1a64(result_text.encode("utf-8")))
        if computed != digest:
            sys.exit(f"{path}: entry for grid index {index}: content "
                     f"digest mismatch (stored {digest}, computed "
                     f"{computed}) — corrupted shard file?")
        file_digest = fnv1a64((stripped + "\n").encode("utf-8"),
                              file_digest)
        entries.append((index, stripped))
    if len(entries) != len(doc["entries"]):
        sys.exit(f"{path}: entry lines ({len(entries)}) disagree "
                 f"with parsed entries ({len(doc['entries'])}); "
                 "was the file reformatted?")
    computed_file = hex_digest(file_digest)
    if computed_file != doc["file_digest"]:
        sys.exit(f"{path}: whole-file digest mismatch (stored "
                 f"{doc['file_digest']}, computed {computed_file}) — "
                 "entries dropped, duplicated, or reordered?")
    return entries


def main():
    ap = argparse.ArgumentParser(
        description="merge sharded sweep JSON into one document")
    ap.add_argument("shards", nargs="+",
                    help="shard files written by figNN --shard i/N")
    ap.add_argument("--out",
                    help="path for the merged document")
    ap.add_argument("--check", action="store_true",
                    help="verify digests and index coverage only; "
                         "write nothing")
    ap.add_argument("--render", metavar="BIN",
                    help="after merging, run 'BIN --from OUT' and "
                         "forward its stdout (the exact output the "
                         "unsharded binary would print)")
    args = ap.parse_args()
    if not args.check and not args.out:
        ap.error("--out is required unless --check is given")
    if args.check and args.render:
        ap.error("--check does not merge, so --render cannot apply")

    loaded = [(path,) + read_shard(path) for path in args.shards]
    check_versions(loaded)

    kind = cases = None
    spec_digest = None
    merged = {}
    for path, text, doc in loaded:
        entries = load_shard(path, text, doc)
        if kind is None:
            kind, cases = doc["kind"], doc["cases"]
            # Spec-driven sweeps stamp the spec file's content
            # digest in the header; every shard of a grid must
            # carry the same one (or none), or the set mixes
            # different scenario files.
            spec_digest = doc.get("spec_digest", "")
        if doc["kind"] != kind:
            sys.exit(f"{path}: kind '{doc['kind']}' does not match "
                     f"'{kind}'")
        if doc["cases"] != cases:
            sys.exit(f"{path}: total case count {doc['cases']} does "
                     f"not match {cases}")
        if doc.get("spec_digest", "") != spec_digest:
            sys.exit(f"{path}: spec digest "
                     f"'{doc.get('spec_digest', '')}' does not "
                     f"match '{spec_digest}'; the shards were "
                     "produced with different --spec files")
        for index, line in entries:
            if index in merged:
                sys.exit(f"{path}: duplicate entry for grid index "
                         f"{index}")
            if not 0 <= index < cases:
                sys.exit(f"{path}: entry index {index} out of range "
                         f"for {cases} cases")
            merged[index] = line

    missing = [i for i in range(cases) if i not in merged]
    if missing:
        head = ", ".join(map(str, missing[:8]))
        sys.exit(f"merged shards cover {len(merged)} of {cases} grid "
                 f"cases; missing indices: {head}"
                 f"{', ...' if len(missing) > 8 else ''}")

    if args.check:
        print(f"OK: {len(args.shards)} shard file(s), kind={kind}, "
              f"{cases} case(s) fully covered, all digests verified",
              file=sys.stderr)
        return 0

    # Identical scaffolding to the C++ writer's --shard 0/1 output,
    # including the recomputed whole-file digest over the (sorted)
    # verbatim entry lines.
    file_digest = FNV_OFFSET
    for i in range(cases):
        file_digest = fnv1a64((merged[i] + "\n").encode("utf-8"),
                              file_digest)
    spec_field = (f'"spec_digest":"{spec_digest}",'
                  if spec_digest else "")
    lines = [f'{{"regate_shard":{FORMAT_VERSION},"kind":"{kind}",'
             f'"cases":{cases},{spec_field}'
             f'"shard":{{"index":0,"count":1}},'
             f'"entries":[']
    body = ",\n".join(merged[i] for i in range(cases))
    if body:
        lines.append(body)
    lines.append(f'],"file_digest":"{hex_digest(file_digest)}"}}\n')
    with open(args.out, "wb") as f:
        f.write("\n".join(lines).encode("utf-8"))
    print(f"merged {len(args.shards)} shard(s), {cases} case(s) "
          f"-> {args.out}", file=sys.stderr)

    if args.render:
        proc = subprocess.run([args.render, "--from", args.out])
        return proc.returncode
    return 0


if __name__ == "__main__":
    sys.exit(main())
