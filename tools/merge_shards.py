#!/usr/bin/env python3
"""Merge sharded sweep results into one deterministic document.

The figure/table binaries write one JSON document per shard
(`figNN --shard i/N --out shard_i.json`, format: sim/serialize.h).
This tool validates that a set of shard files belongs to the same
grid and covers every grid index exactly once, then reassembles them
into a single merged document:

    merge_shards.py --out merged.json shard_0.json ... shard_N-1.json

The merged file is byte-identical to what the binary itself writes
for the degenerate single-shard split (`--shard 0/1`), and feeding it
back with `figNN --from merged.json` renders stdout byte-identical
to an unsharded run — which is how the CI merge job pins the sharded
path against the serial reference. Pass `--render BIN` to do that
re-emission in one step (stdout of `BIN --from merged.json` is
forwarded).

Determinism: the writer emits one entry per line in canonical form,
and this tool reassembles the merged document from those verbatim
lines (sorted by grid index) — numbers are never reparsed or
reprinted, so merging can never perturb a result and any shard
ordering on the command line produces the same bytes.
"""

import argparse
import json
import subprocess
import sys

FORMAT_VERSION = 1


def load_shard(path):
    """Parse one shard file; returns (header dict, [(index, line)])."""
    with open(path, "rb") as f:
        text = f.read().decode("utf-8")
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        sys.exit(f"{path}: not valid JSON: {e}")
    if doc.get("regate_shard") != FORMAT_VERSION:
        sys.exit(f"{path}: not a regate shard file "
                 f"(regate_shard != {FORMAT_VERSION})")
    for key in ("kind", "cases", "shard", "entries"):
        if key not in doc:
            sys.exit(f"{path}: missing '{key}'")

    # Reassemble from the verbatim one-entry-per-line layout so the
    # merge can never reprint (and thereby perturb) a number. The
    # trailing comma belongs to the document syntax, not the entry.
    entries = []
    for line in text.split("\n"):
        stripped = line[:-1] if line.endswith(",") else line
        if not stripped.startswith('{"index":'):
            continue
        index = json.loads(stripped)["index"]
        entries.append((index, stripped))
    if len(entries) != len(doc["entries"]):
        sys.exit(f"{path}: entry lines ({len(entries)}) disagree "
                 f"with parsed entries ({len(doc['entries'])}); "
                 "was the file reformatted?")
    return doc, entries


def main():
    ap = argparse.ArgumentParser(
        description="merge sharded sweep JSON into one document")
    ap.add_argument("shards", nargs="+",
                    help="shard files written by figNN --shard i/N")
    ap.add_argument("--out", required=True,
                    help="path for the merged document")
    ap.add_argument("--render", metavar="BIN",
                    help="after merging, run 'BIN --from OUT' and "
                         "forward its stdout (the exact output the "
                         "unsharded binary would print)")
    args = ap.parse_args()

    kind = cases = None
    merged = {}
    for path in args.shards:
        doc, entries = load_shard(path)
        if kind is None:
            kind, cases = doc["kind"], doc["cases"]
        if doc["kind"] != kind:
            sys.exit(f"{path}: kind '{doc['kind']}' does not match "
                     f"'{kind}'")
        if doc["cases"] != cases:
            sys.exit(f"{path}: total case count {doc['cases']} does "
                     f"not match {cases}")
        for index, line in entries:
            if index in merged:
                sys.exit(f"{path}: duplicate entry for grid index "
                         f"{index}")
            if not 0 <= index < cases:
                sys.exit(f"{path}: entry index {index} out of range "
                         f"for {cases} cases")
            merged[index] = line

    missing = [i for i in range(cases) if i not in merged]
    if missing:
        head = ", ".join(map(str, missing[:8]))
        sys.exit(f"merged shards cover {len(merged)} of {cases} grid "
                 f"cases; missing indices: {head}"
                 f"{', ...' if len(missing) > 8 else ''}")

    # Identical scaffolding to the C++ writer's --shard 0/1 output.
    lines = [f'{{"regate_shard":{FORMAT_VERSION},"kind":"{kind}",'
             f'"cases":{cases},"shard":{{"index":0,"count":1}},'
             f'"entries":[']
    body = ",\n".join(merged[i] for i in range(cases))
    if body:
        lines.append(body)
    lines.append("]}\n")
    with open(args.out, "wb") as f:
        f.write("\n".join(lines).encode("utf-8"))
    print(f"merged {len(args.shards)} shard(s), {cases} case(s) "
          f"-> {args.out}", file=sys.stderr)

    if args.render:
        proc = subprocess.run([args.render, "--from", args.out])
        return proc.returncode
    return 0


if __name__ == "__main__":
    sys.exit(main())
