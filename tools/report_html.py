#!/usr/bin/env python3
"""Fuse a sweep's telemetry artifacts into one self-contained HTML
observability report.

    report_html.py --out report.html \
        [--metrics metrics.json ...] \
        [--trace trace.json ...] \
        [--postmortem run.postmortem.json ...] \
        [--title "fig02 fleet sweep"]

Inputs are what the fleet already writes: `--metrics-out` snapshots
(obs::MetricsRegistry canonical JSON), `--trace-out` Chrome
trace-event timelines (obs::TraceRecorder), and flight-recorder
postmortem dumps (obs::FlightRecorder). The report embeds everything
inline — no external scripts, stylesheets, or fonts — so it can be
archived as a CI artifact and opened anywhere:

- counter/gauge tables and histogram rows with the canonical
  p50/p95/p99 columns, plus pure-CSS bucket bar charts;
- an SVG lane timeline per trace (one row per pid/tid lane, spans as
  rectangles, instants as ticks), honoring explicit fleet lanes;
- the retry/steal story: every shard.retry / shard.steal /
  postmortem.dump / signal.* event across all inputs, in time order;
- postmortem sections flagging the spans left open at the crash.
"""

import argparse
import html
import json
import sys
from pathlib import Path


def esc(text):
    return html.escape(str(text), quote=True)


def load_json(path):
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"{path}: not readable JSON: {e}")


# ----------------------------- metrics -----------------------------

def metrics_section(path, doc):
    if doc.get("obs") != "regate-metrics":
        sys.exit(f"{path}: not a regate metrics snapshot "
                 f"(obs={doc.get('obs')!r})")
    out = [f"<h2>Metrics — {esc(path)}</h2>"]
    counters = doc.get("counters", {})
    gauges = doc.get("gauges", {})
    if counters or gauges:
        out.append("<table><tr><th>name</th><th>value</th></tr>")
        for name, value in sorted(counters.items()):
            out.append(f"<tr><td>{esc(name)}</td>"
                       f"<td class=num>{value}</td></tr>")
        for name, value in sorted(gauges.items()):
            out.append(f"<tr><td>{esc(name)} (gauge)</td>"
                       f"<td class=num>{value}</td></tr>")
        out.append("</table>")
    hists = doc.get("histograms", {})
    if hists:
        out.append("<table><tr><th>histogram</th><th>count</th>"
                   "<th>mean</th><th>p50</th><th>p95</th><th>p99</th>"
                   "<th>buckets</th></tr>")
        for name, h in sorted(hists.items()):
            out.append(
                f"<tr><td>{esc(name)}</td>"
                f"<td class=num>{h['count']}</td>"
                f"<td class=num>{h['mean']:.1f}</td>"
                f"<td class=num>{h.get('p50', '-')}</td>"
                f"<td class=num>{h.get('p95', '-')}</td>"
                f"<td class=num>{h.get('p99', '-')}</td>"
                f"<td>{bucket_bars(h)}</td></tr>")
        out.append("</table>")
    return "\n".join(out)


def bucket_bars(h):
    """Inline-CSS bar chart of one histogram's buckets."""
    buckets = h.get("buckets", [])
    bounds = h.get("bounds", [])
    peak = max(buckets) if buckets else 0
    if peak == 0:
        return "<span class=dim>empty</span>"
    bars = []
    for i, n in enumerate(buckets):
        label = (f"&le;{bounds[i]}" if i < len(bounds)
                 else f"&gt;{bounds[-1]}")
        height = max(1, round(36 * n / peak)) if n else 0
        title = f"{label}: {n}"
        bars.append(f"<span class=bar title='{esc(title)}' "
                    f"style='height:{height}px'></span>")
    return f"<span class=bars>{''.join(bars)}</span>"


# ----------------------------- timeline ----------------------------

LANE_H = 22
LANE_PAD = 4
CHART_W = 960
LABEL_W = 150

SPAN_COLORS = ["#4e79a7", "#f28e2b", "#76b7b2", "#59a14f",
               "#edc948", "#b07aa1", "#ff9da7", "#9c755f"]


def timeline_svg(path, events, postmortem=False):
    """SVG lane timeline: spans as rects, instants as ticks."""
    spans, instants, open_spans = [], [], []
    open_stack = {}
    for ev in events:
        lane = (ev.get("pid", 0), ev.get("tid", 0))
        ph = ev.get("ph")
        if ph == "X":
            spans.append((lane, ev["ts"], ev.get("dur", 0),
                          ev["name"], False))
        elif ph == "i":
            instants.append((lane, ev["ts"], ev["name"]))
        elif ph == "B":
            open_stack.setdefault((lane, ev["name"]), []).append(
                ev["ts"])
        elif ph == "E":
            starts = open_stack.get((lane, ev["name"]))
            if starts:
                ts0 = starts.pop()
                spans.append((lane, ts0, max(0, ev["ts"] - ts0),
                              ev["name"], False))
    t_end = 0
    for lane, ts, dur, name, _ in spans:
        t_end = max(t_end, ts + dur)
    for lane, ts, name in instants:
        t_end = max(t_end, ts)
    # Spans still open at the crash render to the dump's horizon,
    # hatched, so the frontier is visible at a glance.
    for (lane, name), starts in sorted(open_stack.items()):
        for ts in starts:
            open_spans.append((lane, ts, name))
            t_end = max(t_end, ts)
    if t_end == 0:
        t_end = 1
    lanes = sorted({s[0] for s in spans} | {i[0] for i in instants} |
                   {o[0] for o in open_spans})
    lane_y = {lane: i for i, lane in enumerate(lanes)}
    height = len(lanes) * (LANE_H + LANE_PAD) + 24

    def x(ts):
        return LABEL_W + (CHART_W - LABEL_W) * ts / t_end

    def y(lane):
        return 4 + lane_y[lane] * (LANE_H + LANE_PAD)

    color = {}
    parts = [f"<svg viewBox='0 0 {CHART_W} {height}' "
             f"class=timeline role=img>"]
    for lane in lanes:
        parts.append(
            f"<text x=4 y={y(lane) + LANE_H - 6} class=lane>"
            f"{esc(f'pid {lane[0]} / lane {lane[1]}')}</text>")
    for lane, ts, dur, name, _ in sorted(spans):
        c = color.setdefault(name,
                             SPAN_COLORS[len(color) %
                                         len(SPAN_COLORS)])
        w = max(1.0, x(ts + dur) - x(ts))
        parts.append(
            f"<rect x={x(ts):.1f} y={y(lane)} width={w:.1f} "
            f"height={LANE_H - 8} fill='{c}'>"
            f"<title>{esc(f'{name} [{ts}us +{dur}us]')}</title>"
            f"</rect>")
    for lane, ts, name in open_spans:
        w = max(1.0, x(t_end) - x(ts))
        parts.append(
            f"<rect x={x(ts):.1f} y={y(lane)} width={w:.1f} "
            f"height={LANE_H - 8} class=open>"
            f"<title>{esc(f'{name} [open at crash, {ts}us…]')}"
            f"</title></rect>")
    for lane, ts, name in sorted(instants):
        parts.append(
            f"<line x1={x(ts):.1f} y1={y(lane)} x2={x(ts):.1f} "
            f"y2={y(lane) + LANE_H - 4} class=tick>"
            f"<title>{esc(f'{name} @{ts}us')}</title></line>")
    parts.append(f"<text x={LABEL_W} y={height - 6} class=axis>0us"
                 f"</text><text x={CHART_W - 4} y={height - 6} "
                 f"class='axis end'>{t_end}us</text>")
    parts.append("</svg>")
    legend = "".join(
        f"<span class=key><span class=swatch "
        f"style='background:{c}'></span>{esc(name)}</span>"
        for name, c in sorted(color.items()))
    if open_spans:
        legend += ("<span class=key><span class='swatch open'>"
                   "</span>open at crash</span>")
    return "".join(parts) + f"<div class=legend>{legend}</div>"


def trace_section(path, events, postmortem=False):
    kind = "Postmortem" if postmortem else "Trace"
    out = [f"<h2>{kind} timeline — {esc(path)}</h2>",
           f"<p class=dim>{len(events)} events</p>",
           timeline_svg(path, events, postmortem)]
    return "\n".join(out)


# --------------------------- story section --------------------------

STORY_NAMES = ("shard.retry", "shard.steal", "postmortem.dump",
               "agent.assign")


def story_section(sources):
    """The retry/steal story: lifecycle markers across all inputs."""
    rows = []
    for path, events in sources:
        for ev in events:
            name = ev.get("name", "")
            if name in STORY_NAMES or name.startswith("signal."):
                detail = ""
                args = ev.get("args")
                if isinstance(args, dict):
                    detail = " ".join(
                        f"{k}={v}" for k, v in sorted(args.items()))
                rows.append((ev.get("ts", 0), name, detail,
                             Path(path).name))
    if not rows:
        return ("<h2>Retry / steal story</h2><p class=dim>No "
                "retries, steals, or crashes recorded — a clean "
                "sweep.</p>")
    rows.sort()
    out = ["<h2>Retry / steal story</h2>",
           "<table><tr><th>ts (us)</th><th>event</th>"
           "<th>detail</th><th>source</th></tr>"]
    for ts, name, detail, src in rows:
        cls = (" class=crash" if name.startswith("signal.")
               or name == "postmortem.dump" else "")
        out.append(f"<tr{cls}><td class=num>{ts}</td>"
                   f"<td>{esc(name)}</td><td>{esc(detail)}</td>"
                   f"<td>{esc(src)}</td></tr>")
    out.append("</table>")
    return "\n".join(out)


# ------------------------------- page -------------------------------

CSS = """
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em auto;
       max-width: 1000px; color: #1a1a2e; }
h1 { border-bottom: 2px solid #4e79a7; padding-bottom: .3em; }
h2 { margin-top: 1.6em; }
table { border-collapse: collapse; margin: .6em 0; width: 100%; }
th, td { border: 1px solid #d0d4da; padding: .25em .6em;
         text-align: left; vertical-align: bottom; }
th { background: #eef1f5; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
tr.crash td { background: #fde8e8; }
.dim { color: #777; }
.bars { display: inline-flex; align-items: flex-end; gap: 1px;
        height: 38px; }
.bar { display: inline-block; width: 7px; background: #4e79a7;
       min-height: 0; }
svg.timeline { width: 100%; background: #fafbfc;
               border: 1px solid #d0d4da; }
svg .lane { font: 11px system-ui, sans-serif; fill: #555; }
svg .axis { font: 10px system-ui, sans-serif; fill: #999; }
svg .axis.end { text-anchor: end; }
svg .tick { stroke: #c03; stroke-width: 1.5; }
svg rect.open { fill: #c03; fill-opacity: .35;
                stroke: #c03; stroke-dasharray: 3 2; }
.legend { margin: .4em 0 1em; }
.key { margin-right: 1.2em; font-size: 12px; }
.swatch { display: inline-block; width: 10px; height: 10px;
          margin-right: .3em; }
.swatch.open { background: #c03; opacity: .5; }
"""


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--metrics", action="append", default=[],
                    help="--metrics-out snapshot (repeatable)")
    ap.add_argument("--trace", action="append", default=[],
                    help="--trace-out timeline (repeatable)")
    ap.add_argument("--postmortem", action="append", default=[],
                    help="flight-recorder dump (repeatable)")
    ap.add_argument("--out", required=True,
                    help="HTML file to write")
    ap.add_argument("--title", default="regate observability report")
    args = ap.parse_args()
    if not (args.metrics or args.trace or args.postmortem):
        ap.error("give at least one --metrics/--trace/--postmortem")

    sections = []
    event_sources = []
    for path in args.metrics:
        sections.append(metrics_section(path, load_json(path)))
    for path in args.trace:
        events = load_json(path)
        if not isinstance(events, list):
            sys.exit(f"{path}: trace top level is not an array")
        event_sources.append((path, events))
        sections.append(trace_section(path, events))
    for path in args.postmortem:
        events = load_json(path)
        if not isinstance(events, list):
            sys.exit(f"{path}: postmortem top level is not an array")
        event_sources.append((path, events))
        sections.append(trace_section(path, events,
                                      postmortem=True))
    sections.append(story_section(event_sources))

    body = "\n".join(sections)
    page = (f"<!doctype html>\n<html lang=en><head>"
            f"<meta charset=utf-8>"
            f"<title>{esc(args.title)}</title>"
            f"<style>{CSS}</style></head>\n"
            f"<body><h1>{esc(args.title)}</h1>\n{body}\n"
            f"</body></html>\n")
    Path(args.out).write_text(page)
    print(f"{args.out}: {len(page)} bytes from "
          f"{len(args.metrics)} metrics, {len(args.trace)} trace, "
          f"{len(args.postmortem)} postmortem input(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
