#!/usr/bin/env python3
"""Validate a Chrome/Perfetto trace-event JSON file (obs/trace.h).

Usage:

    trace_check.py TRACE.json [TRACE2.json ...]
    trace_check.py --postmortem DUMP.postmortem.json [...]
    trace_check.py --bin BINARY [--arg EXTRA ...]

The first form validates existing trace files (what the fleet-e2e CI
job runs on the orchestrator's --trace-out). The second runs
`BINARY [EXTRA...] --trace-out <tmp>` itself and validates what it
wrote (the ctest registration).

Checks, per file:

1. the file is a non-empty JSON array of event objects;
2. every event carries the trace_event keys the viewers rely on —
   name, cat, ph, ts, pid, tid — with the right types; complete
   events ("ph":"X") also carry a non-negative dur, instants
   ("ph":"i") a scope "s";
3. timestamps are monotone in file order (flush() writes sorted);
4. complete spans nest properly per (pid, tid) lane: sorted by
   (ts, -dur) — the enclosing span first on a start-time tie — no
   span may end after a still-open enclosing span ends. Partial
   overlap means the instrumentation mis-threaded its lanes and the
   timeline would render as garbage.

--postmortem relaxes the grammar to what a crash dump can honestly
promise (obs/flight_recorder.h): duration events also come as
begin/end pairs ("ph":"B"/"E"), a span the crash interrupted stays
open at EOF, and an "E" whose "B" was evicted from the ring buffer
stands alone. File-order ts monotonicity and the per-event key
checks still hold — a dump that violates those is torn, not merely
truncated.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

PHASES = {"X", "i"}
POSTMORTEM_PHASES = {"X", "i", "B", "E"}


def fail(path, msg):
    sys.exit(f"{path}: {msg}")


def check_event(path, i, ev, postmortem=False):
    if not isinstance(ev, dict):
        fail(path, f"event {i} is not an object")
    for key, kind in (("name", str), ("cat", str), ("ph", str),
                      ("ts", int), ("pid", int), ("tid", int)):
        if not isinstance(ev.get(key), kind):
            fail(path, f"event {i} lacks {kind.__name__} key "
                       f"'{key}': {ev}")
    if not ev["name"]:
        fail(path, f"event {i} has an empty name")
    if ev["ph"] not in (POSTMORTEM_PHASES if postmortem else PHASES):
        fail(path, f"event {i} has unexpected ph {ev['ph']!r}")
    if ev["ts"] < 0:
        fail(path, f"event {i} has negative ts: {ev}")
    if ev["ph"] == "X":
        if not isinstance(ev.get("dur"), int) or ev["dur"] < 0:
            fail(path, f"complete event {i} lacks a non-negative "
                       f"dur: {ev}")
    elif ev["ph"] == "i" and ev.get("s") != "t":
        fail(path, f"instant event {i} lacks scope \"s\":\"t\": {ev}")


def check_nesting(path, events):
    """Complete spans per lane must nest (no partial overlap)."""
    lanes = {}
    for ev in events:
        if ev["ph"] == "X":
            lanes.setdefault((ev["pid"], ev["tid"]), []).append(
                (ev["ts"], ev["ts"] + ev["dur"], ev["name"]))
    for lane, spans in sorted(lanes.items()):
        stack = []  # end times of the currently open spans
        for ts, end, name in sorted(spans,
                                    key=lambda s: (s[0], -s[1])):
            while stack and stack[-1] <= ts:
                stack.pop()
            if stack and end > stack[-1]:
                fail(path, f"span '{name}' [{ts}, {end}) on lane "
                           f"pid={lane[0]} tid={lane[1]} overlaps "
                           f"an enclosing span ending at "
                           f"{stack[-1]} without nesting inside it")
            stack.append(end)
    return len(lanes)


def check_begin_end(path, events):
    """B/E discipline a ring-buffer crash dump can promise: an E
    closes the innermost open B of the same name on its lane when
    one exists (a lone E had its B evicted); open Bs at EOF are the
    crash frontier. Returns the open-span names."""
    stacks = {}
    for i, ev in enumerate(events):
        lane = (ev["pid"], ev["tid"])
        if ev["ph"] == "B":
            stacks.setdefault(lane, []).append(ev["name"])
        elif ev["ph"] == "E":
            stack = stacks.get(lane, [])
            if ev["name"] in stack:
                # Close the innermost matching B; anything opened
                # after it and never closed was evicted or
                # interrupted, which a dump cannot distinguish.
                stack.reverse()
                stack.remove(ev["name"])
                stack.reverse()
    return sorted(n for stack in stacks.values() for n in stack)


def check_trace(path, postmortem=False):
    try:
        events = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as e:
        fail(path, f"not readable JSON: {e}")
    if not isinstance(events, list):
        fail(path, "top level is not a JSON array")
    if not events:
        fail(path, "trace holds no events")
    last_ts = -1
    for i, ev in enumerate(events):
        check_event(path, i, ev, postmortem)
        if ev["ts"] < last_ts:
            fail(path, f"event {i} breaks ts monotonicity "
                       f"({ev['ts']} after {last_ts})")
        last_ts = ev["ts"]
    lanes = check_nesting(path, events)
    names = sorted({ev["name"] for ev in events})
    if postmortem:
        open_spans = check_begin_end(path, events)
        suffix = (f"; open at crash: {', '.join(open_spans)}"
                  if open_spans else "")
        print(f"{path}: postmortem of {len(events)} events on "
              f"{lanes} lane(s) OK ({', '.join(names)}){suffix}")
    else:
        print(f"{path}: {len(events)} events on {lanes} lane(s) OK "
              f"({', '.join(names)})")
    return events


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("traces", nargs="*",
                    help="trace files to validate")
    ap.add_argument("--bin",
                    help="run this binary with --trace-out and "
                         "validate what it writes")
    ap.add_argument("--arg", action="append", default=[],
                    help="extra argument for --bin (repeatable)")
    ap.add_argument("--postmortem", action="store_true",
                    help="validate flight-recorder crash dumps: "
                         "accept B/E phases, open spans at EOF, and "
                         "orphan Es whose B the ring evicted")
    args = ap.parse_args()
    if not args.traces and not args.bin:
        ap.error("give trace files and/or --bin")

    for path in args.traces:
        check_trace(path, postmortem=args.postmortem)

    if args.bin:
        with tempfile.TemporaryDirectory() as tmpdir:
            trace = Path(tmpdir) / "trace.json"
            cmd = [args.bin] + args.arg + ["--trace-out", str(trace)]
            proc = subprocess.run(cmd, capture_output=True)
            if proc.returncode != 0:
                sys.exit(f"command failed ({proc.returncode}): "
                         f"{' '.join(map(str, cmd))}\n"
                         f"{proc.stderr.decode(errors='replace')}")
            if not trace.exists():
                sys.exit(f"{' '.join(map(str, cmd))} wrote no "
                         f"trace file")
            events = check_trace(trace)
            # A grid binary's sweep must show up as the grid span
            # plus one span per completed case.
            names = {ev["name"] for ev in events}
            if not names & {"grid.run", "grid.search"}:
                sys.exit(f"{trace}: no grid.run/grid.search span — "
                         "did the sweep record anything?")
    return 0


if __name__ == "__main__":
    sys.exit(main())
