#!/usr/bin/env python3
"""Compare the current BENCH_core.json against a previous run's copy
and fail on a significant slowdown of any core case.

Usage:
    check_bench_regression.py --current build/BENCH_core.json \
        --previous prev/BENCH_core.json [--max-slowdown 0.20]

Exit codes: 0 = ok (or no previous file to compare against),
1 = at least one *gated* case slowed down by more than --max-slowdown.

The comparison uses each case's `speedup` (seed algorithm time over
current implementation time, both measured in the same process on the
same host), not raw `new_ns`: CI runs land on different runner
machines, and the seed-replica baseline cancels machine speed out of
the ratio. A case regresses when its speedup drops to less than
(1 - max_slowdown) of the previous run's.

Only cases marked `"gated": 1` in BENCH_core.json fail the build
(the same set micro_benchmarks enforces the 5x floor on); ungated
cases — pool scaling, closed-form memoization — are machine-dependent
and reported as SLOWER without failing. Cases whose time sits below
the --min-ns clock-resolution floor are skipped (their ratios are
dominated by timer noise), as are cases present in only one file (the
case set is allowed to evolve).

`--require NAME` (repeatable) asserts NAME is present and gated in
the *current* file, and fails the build otherwise — even when there
is no previous artifact to diff against. This keeps load-bearing
cases (engine_rerun_memoized, BM_WarmHitCost) from silently dropping
out of the bench binary or losing their gate.
"""

import argparse
import json
import os
import sys


def load_cases(path):
    with open(path) as f:
        doc = json.load(f)
    return {c["name"]: c for c in doc.get("cases", [])}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", required=True)
    ap.add_argument("--previous", required=True)
    ap.add_argument("--max-slowdown", type=float, default=0.20,
                    help="fail when a case's speedup drops by more "
                         "than this fraction (default 0.20 = 20%%)")
    ap.add_argument("--min-ns", type=float, default=2000.0,
                    help="skip cases whose new_ns sits below this "
                         "floor (clock-resolution noise, default "
                         "2000 ns)")
    ap.add_argument("--require", action="append", default=[],
                    metavar="NAME",
                    help="fail unless NAME is present and gated in "
                         "the current file (repeatable); checked "
                         "even without a previous artifact")
    args = ap.parse_args()

    # Required-case presence is a property of the current build alone,
    # so it is checked before (and regardless of) the previous-artifact
    # diff below.
    cur = load_cases(args.current)
    missing = False
    for name in args.require:
        if name not in cur:
            print(f"FAIL: required case {name} missing from "
                  f"{args.current}")
            missing = True
        elif not cur[name].get("gated", 0):
            print(f"FAIL: required case {name} present but not gated "
                  f"in {args.current}")
            missing = True
    if missing:
        return 1

    # The first run on a branch (or an expired artifact) legitimately
    # has nothing to compare against: say so explicitly and pass,
    # rather than leaning on the caller to continue-on-error.
    if not os.path.exists(args.previous):
        print(f"no previous artifact at {args.previous} — skipping "
              "regression check")
        return 0
    try:
        prev = load_cases(args.previous)
    except (json.JSONDecodeError, OSError) as e:
        print(f"previous artifact at {args.previous} unreadable "
              f"({e}) — skipping regression check")
        return 0

    failed = False
    for name in sorted(set(cur) | set(prev)):
        if name not in prev:
            print(f"  NEW      {name}: speedup "
                  f"{cur[name]['speedup']:.2f}x")
            continue
        if name not in cur:
            print(f"  GONE     {name} (was "
                  f"{prev[name]['speedup']:.2f}x)")
            continue
        old = prev[name]
        new = cur[name]
        if old["speedup"] <= 0:
            print(f"  SKIP     {name}: previous speedup not positive")
            continue
        if old["new_ns"] < args.min_ns or new["new_ns"] < args.min_ns:
            print(f"  SKIP     {name}: below {args.min_ns:.0f} ns "
                  f"noise floor ({old['new_ns']:.0f} -> "
                  f"{new['new_ns']:.0f} ns)")
            continue
        ratio = new["speedup"] / old["speedup"]
        status = "OK"
        if ratio < 1.0 - args.max_slowdown:
            # Only cases the bench itself gates hard-fail the build;
            # ungated cases (pool scaling, closed-form memoization)
            # are machine-dependent and reported for the trajectory.
            if new.get("gated", 1):
                status = "REGRESSED"
                failed = True
            else:
                status = "SLOWER"
        print(f"  {status:9s}{name}: speedup {old['speedup']:.2f}x -> "
              f"{new['speedup']:.2f}x ({new['new_ns']:.0f} ns)")

    if failed:
        print(f"FAIL: at least one core case's speedup dropped by "
              f"more than {args.max_slowdown:.0%}")
        return 1
    print("benchmark regression check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
