#!/usr/bin/env python3
"""Live terminal view of a running regate_orch sweep.

Polls the orchestrator's `--status-port` endpoint (one `status`
frame per TCP connection, answered with a canonical-JSON snapshot;
see src/net/agent_protocol.h) and renders a refreshing fleet table:
sweep progress, attempt/retry/steal counters, the fleet-wide case
latency quantiles, ETA, and one row per fleet slot with its
heartbeat age.

    regate_top.py --port 9400 [--host localhost] [--interval 2]
    regate_top.py --port 9400 --once        # one snapshot, no UI
    regate_top.py --port 9400 --once --raw  # raw canonical JSON

The snapshot carries the same FNV-1a digest footer as the metrics
snapshot; every poll re-verifies it, so a torn or tampered reply is
an error, never a silently wrong display.
"""

import argparse
import json
import socket
import sys
import time

MAGIC = "@regate-net"
FNV_OFFSET = 0xCBF29CE484222325
FNV_PRIME = 0x100000001B3
MASK64 = (1 << 64) - 1


def fnv1a64(data):
    h = FNV_OFFSET
    for b in data:
        h = ((h ^ b) * FNV_PRIME) & MASK64
    return h


def verify_digest(raw):
    """Check the snapshot's digest footer (computed over every byte
    up to and including the opening quote of its value)."""
    marker = b'"digest": "'
    at = raw.rfind(marker)
    if at < 0:
        raise ValueError("snapshot carries no digest footer")
    prefix_end = at + len(marker)
    want = raw[prefix_end:prefix_end + 16].decode("ascii")
    got = format(fnv1a64(raw[:prefix_end]), "016x")
    if want != got:
        raise ValueError(f"snapshot digest mismatch: footer says "
                         f"{want}, bytes hash to {got}")


def fetch_status(host, port, timeout=5.0):
    """One status request; returns (parsed dict, raw bytes)."""
    with socket.create_connection((host, port), timeout=timeout) as s:
        s.sendall(f"{MAGIC} v1 status\n".encode())
        f = s.makefile("rb")
        line = f.readline().decode(errors="replace").rstrip("\n")
        parts = line.split()
        if (len(parts) < 4 or parts[0] != MAGIC
                or parts[2] != "status-reply"
                or not parts[3].startswith("bytes=")):
            raise ValueError(f"unexpected status reply: {line!r}")
        n = int(parts[3][len("bytes="):])
        raw = f.read(n)
        if len(raw) != n:
            raise ValueError(f"short status payload: "
                             f"{len(raw)}/{n} bytes")
    verify_digest(raw)
    return json.loads(raw), raw


def fmt_age(ms):
    if ms < 0:
        return "-"
    if ms < 10_000:
        return f"{ms}ms"
    return f"{ms / 1000:.1f}s"


def fmt_eta(eta_s):
    if eta_s <= 0:
        return "-"
    if eta_s < 120:
        return f"{eta_s:.0f}s"
    return f"{eta_s / 60:.1f}m"


def render(st):
    lines = []
    cases, merged = st["cases"], st["merged_cases"]
    pct = 100.0 * merged / cases if cases else 0.0
    lines.append(f"regate_orch {st['bin']} — {merged}/{cases} cases "
                 f"({pct:.1f}%), {st['completed_shards']}/"
                 f"{st['shards']} shards, ETA {fmt_eta(st['eta_s'])}")
    lines.append(f"attempts {st['attempts']}  retries "
                 f"{st['retries']}  steals {st['steal_spawned']} "
                 f"(won {st['steal_wins']}, lost "
                 f"{st['steal_losses']})  case us: "
                 f"mean {st['case_mean_us']}  p50 {st['case_p50_us']}"
                 f"  p95 {st['case_p95_us']}  p99 {st['case_p99_us']}")
    lines.append("")
    lines.append(f"{'SLOT':<22} {'STATE':<6} {'SHARD':>5} "
                 f"{'ATT':>3} {'SPEC':>4} {'HB AGE':>8} PROGRESS")
    for slot in st["slots"]:
        state = ("busy" if slot["busy"]
                 else "idle" if slot["alive"] else "gone")
        lines.append(
            f"{slot['name']:<22} {state:<6} "
            f"{slot['shard'] if slot['busy'] else '-':>5} "
            f"{slot['attempt'] if slot['busy'] else '-':>3} "
            f"{'yes' if slot['speculative'] else '-':>4} "
            f"{fmt_age(slot['heartbeat_age_ms']):>8} "
            f"{slot['progress'] or '-'}")
    return "\n".join(lines)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--host", default="localhost")
    ap.add_argument("--port", type=int, required=True)
    ap.add_argument("--interval", type=float, default=2.0,
                    help="refresh period in seconds")
    ap.add_argument("--once", action="store_true",
                    help="print one snapshot and exit (scriptable)")
    ap.add_argument("--raw", action="store_true",
                    help="with --once: print the raw canonical JSON")
    args = ap.parse_args()

    if args.once:
        st, raw = fetch_status(args.host, args.port)
        if args.raw:
            sys.stdout.buffer.write(raw)
        else:
            print(render(st))
        return 0

    try:
        while True:
            try:
                st, _ = fetch_status(args.host, args.port)
            except (OSError, ValueError) as e:
                # The sweep finishing closes the listener; that is
                # the normal way a watch session ends.
                print(f"\nregate_top: {e}")
                return 0
            # ANSI clear + home keeps the view flicker-free without
            # any curses dependency.
            sys.stdout.write("\x1b[2J\x1b[H" + render(st) + "\n")
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
